"""The policy layer: advertisement/scheduling strategies and the builder."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.routing.builder import OverlayBuilder
from repro.routing.engine import DeliveryEngine, LinkModel, ServiceModel
from repro.routing.overlay import BrokerOverlay
from repro.routing.policy import (
    CommunityPolicy,
    DeadlineScheduling,
    FifoScheduling,
    HybridPolicy,
    PerSubscriptionPolicy,
    PriorityScheduling,
    resolve_advertisement,
    resolve_scheduling,
)
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.parser import parse_xml


@pytest.fixture()
def corpus():
    docs = [
        parse_xml("<a><b/><c/></a>", doc_id=0),
        parse_xml("<a><b><d/></b></a>", doc_id=1),
        parse_xml("<a><c/></a>", doc_id=2),
        parse_xml("<a><c><d/></c></a>", doc_id=3),
    ]
    return DocumentCorpus(docs)


@pytest.fixture()
def patterns():
    return [
        parse_xpath("/a/b"),
        parse_xpath("/a/b/d"),
        parse_xpath("/a/c"),
        parse_xpath("/a/c/d"),
        parse_xpath("/a"),
        parse_xpath("//d"),
    ]


def table_snapshot(overlay):
    return {
        broker_id: frozenset(
            (entry.pattern, entry.destination) for entry in node.table
        )
        for broker_id, node in overlay.brokers.items()
    }


class TestAdvertisementResolution:
    def test_strings_resolve_to_policies(self):
        assert isinstance(
            resolve_advertisement("per_subscription"), PerSubscriptionPolicy
        )
        community = resolve_advertisement("community", threshold=0.7)
        assert isinstance(community, CommunityPolicy)
        assert community.threshold == 0.7
        hybrid = resolve_advertisement("hybrid", aggregate_above=3)
        assert isinstance(hybrid, HybridPolicy)
        assert hybrid.aggregate_above == 3

    def test_community_string_defaults_threshold(self):
        assert resolve_advertisement("community").threshold == 0.5

    def test_instances_pass_through(self):
        policy = CommunityPolicy(0.4)
        assert resolve_advertisement(policy) is policy

    def test_instance_with_overrides_rejected(self):
        with pytest.raises(ValueError):
            resolve_advertisement(CommunityPolicy(0.4), threshold=0.5)
        with pytest.raises(ValueError):
            resolve_advertisement("per_subscription", threshold=0.5)

    def test_unknown_spellings_rejected(self):
        with pytest.raises(ValueError):
            resolve_advertisement("multicast")
        with pytest.raises(TypeError):
            resolve_advertisement(42)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CommunityPolicy(1.5)
        with pytest.raises(ValueError):
            CommunityPolicy(0.5, linkage="single")
        with pytest.raises(ValueError):
            HybridPolicy(0.5, aggregate_above=-1)

    def test_mode_labels(self):
        assert PerSubscriptionPolicy().mode_label() == "per_subscription"
        assert (
            CommunityPolicy(0.5).mode_label() == "community(threshold=0.5)"
        )
        assert "linkage=average" in CommunityPolicy(
            0.5, linkage="average"
        ).mode_label()
        assert (
            HybridPolicy(0.5, aggregate_above=4).mode_label()
            == "hybrid(threshold=0.5, aggregate_above=4)"
        )


class TestAdvertise:
    def test_advertise_accepts_policy_and_string(self, corpus, patterns):
        by_policy = BrokerOverlay.chain(3)
        by_policy.attach_round_robin(patterns)
        by_policy.advertise(CommunityPolicy(0.5), provider=corpus)
        by_string = BrokerOverlay.chain(3)
        by_string.attach_round_robin(patterns)
        by_string.advertise("community", provider=corpus, threshold=0.5)
        assert by_policy.mode == by_string.mode
        assert table_snapshot(by_policy) == table_snapshot(by_string)

    def test_similarity_policy_requires_provider(self, patterns):
        overlay = BrokerOverlay.chain(2)
        overlay.attach_round_robin(patterns)
        with pytest.raises(ValueError):
            overlay.advertise(CommunityPolicy(0.5))

    def test_policy_and_provider_stay_live(self, corpus, patterns):
        overlay = BrokerOverlay.chain(2)
        overlay.attach_round_robin(patterns)
        policy = CommunityPolicy(0.5)
        overlay.advertise(policy, provider=corpus)
        assert overlay.policy is policy
        assert overlay.provider is corpus
        overlay.reset_routing()
        assert overlay.policy is None and overlay.provider is None

    def test_per_subscription_policy_matches_legacy(self, patterns):
        legacy = BrokerOverlay.chain(3)
        legacy.attach_round_robin(patterns)
        legacy.advertise_subscriptions()
        modern = BrokerOverlay.chain(3)
        modern.attach_round_robin(patterns)
        modern.advertise(PerSubscriptionPolicy())
        assert modern.mode == legacy.mode == "per_subscription"
        assert table_snapshot(modern) == table_snapshot(legacy)
        assert (
            modern.advertisement_messages == legacy.advertisement_messages
        )

    def test_average_linkage_clusters(self, corpus, patterns):
        overlay = BrokerOverlay.chain(1)
        overlay.attach_round_robin(patterns)
        overlay.advertise(
            CommunityPolicy(0.3, linkage="average"), provider=corpus
        )
        communities = overlay.brokers[0].communities
        members = sorted(
            member for _, group in communities for member in group
        )
        assert members == list(range(len(patterns)))
        # Average linkage never arms the thresholded ratio bound.
        assert overlay.brokers[0].index.prune_below is None


class TestHybridPolicy:
    def test_cutoff_zero_equals_community(self, corpus, patterns):
        hybrid = BrokerOverlay.chain(3)
        hybrid.attach_round_robin(patterns)
        hybrid.advertise(
            HybridPolicy(0.5, aggregate_above=0), provider=corpus
        )
        community = BrokerOverlay.chain(3)
        community.attach_round_robin(patterns)
        community.advertise(CommunityPolicy(0.5), provider=corpus)
        assert table_snapshot(hybrid) == table_snapshot(community)

    def test_huge_cutoff_equals_per_subscription(self, corpus, patterns):
        hybrid = BrokerOverlay.chain(3)
        hybrid.attach_round_robin(patterns)
        hybrid.advertise(
            HybridPolicy(0.5, aggregate_above=10_000), provider=corpus
        )
        baseline = BrokerOverlay.chain(3)
        baseline.attach_round_robin(patterns)
        baseline.advertise_subscriptions()
        assert table_snapshot(hybrid) == table_snapshot(baseline)

    def test_broker_flips_regime_crossing_cutoff(self, corpus, patterns):
        overlay = BrokerOverlay.chain(2)
        overlay.attach(0, patterns[0])
        overlay.advertise(
            HybridPolicy(0.0, aggregate_above=1), provider=corpus
        )
        # One subscription: per-subscription shape (singleton per member).
        assert overlay.brokers[0].communities == [
            (patterns[0], (0,))
        ]
        # Second arrival crosses the cutoff: the broker aggregates into
        # one community covering both members.
        overlay.subscribe(0, patterns[1])
        ((advertised, members),) = overlay.brokers[0].communities
        assert sorted(members) == [0, 1]
        # Dropping back under the cutoff flips back.
        overlay.unsubscribe(1)
        assert overlay.brokers[0].communities == [
            (patterns[0], (0,))
        ]


class TestSchedulingResolution:
    def test_strings_resolve(self):
        assert isinstance(resolve_scheduling("fifo"), FifoScheduling)
        assert isinstance(resolve_scheduling("priority"), PriorityScheduling)
        deadline = resolve_scheduling("deadline", default_slack=5.0)
        assert isinstance(deadline, DeadlineScheduling)
        assert deadline.default_slack == 5.0

    def test_instances_pass_through(self):
        policy = PriorityScheduling({1: 3.0})
        assert resolve_scheduling(policy) is policy
        with pytest.raises(ValueError):
            resolve_scheduling(policy, weights={})

    def test_unknown_spellings_rejected(self):
        with pytest.raises(ValueError):
            resolve_scheduling("lifo")
        with pytest.raises(TypeError):
            resolve_scheduling(3.5)

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            DeadlineScheduling(default_slack=-1.0)


class _StubJob:
    def __init__(self, priority_class=0, deadline=None, published_at=0.0):
        self.doc_index = 0
        self.published_at = published_at
        self.arrived_at = published_at
        self.priority_class = priority_class
        self.deadline = deadline


class TestSchedulingSelection:
    def test_fifo_picks_head(self):
        queue = [_StubJob(), _StubJob(priority_class=9)]
        assert FifoScheduling().select(queue, 0.0) == 0

    def test_priority_picks_heaviest_class(self):
        queue = [_StubJob(0), _StubJob(2), _StubJob(1)]
        assert PriorityScheduling().select(queue, 0.0) == 1

    def test_priority_respects_explicit_weights(self):
        queue = [_StubJob(0), _StubJob(2), _StubJob(1)]
        inverted = PriorityScheduling({0: 10.0, 1: 5.0, 2: 0.0})
        assert inverted.select(queue, 0.0) == 0

    def test_priority_ties_keep_arrival_order(self):
        queue = [_StubJob(1), _StubJob(1), _StubJob(1)]
        assert PriorityScheduling().select(queue, 0.0) == 0

    def test_deadline_picks_earliest(self):
        queue = [
            _StubJob(deadline=9.0),
            _StubJob(deadline=4.0),
            _StubJob(deadline=6.0),
        ]
        assert DeadlineScheduling().select(queue, 0.0) == 1

    def test_deadline_default_slack_orders_unset_jobs(self):
        queue = [
            _StubJob(published_at=3.0),
            _StubJob(published_at=1.0),
            _StubJob(deadline=100.0),
        ]
        # Finite slack: unset jobs compete on published_at + slack.
        assert DeadlineScheduling(default_slack=10.0).select(queue, 0.0) == 1
        # Infinite slack: any explicit deadline wins.
        assert DeadlineScheduling().select(queue, 0.0) == 2


class TestOverlayBuilder:
    def build_base(self, patterns):
        return (
            OverlayBuilder()
            .topology("chain", 3)
            .subscriptions(patterns)
        )

    def test_requires_topology(self, patterns):
        with pytest.raises(ValueError):
            OverlayBuilder().subscriptions(patterns).build_overlay()

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError):
            OverlayBuilder().topology("hypercube", 4)

    def test_default_policy_is_per_subscription(self, patterns):
        overlay = self.build_base(patterns).build_overlay()
        assert overlay.mode == "per_subscription"

    def test_build_matches_manual_assembly(self, corpus, patterns):
        overlay, engine = (
            self.build_base(patterns)
            .provider(corpus)
            .advertisement(CommunityPolicy(0.5))
            .service(ServiceModel(base=0.3, per_match=0.1))
            .links(LinkModel(default=2.0))
            .scheduling(PriorityScheduling())
            .build()
        )
        manual = BrokerOverlay.chain(3)
        manual.attach_round_robin(patterns)
        manual.advertise_communities(corpus, threshold=0.5)
        assert table_snapshot(overlay) == table_snapshot(manual)
        assert isinstance(engine, DeliveryEngine)
        assert isinstance(engine.scheduling, PriorityScheduling)
        assert engine.service.base == 0.3
        assert engine.links.latency(0, 1) == 2.0

    def test_string_policies_accepted(self, corpus, patterns):
        overlay, engine = (
            self.build_base(patterns)
            .provider(corpus)
            .advertisement("community", threshold=0.3)
            .scheduling("deadline", default_slack=4.0)
            .build()
        )
        assert overlay.mode == "community(threshold=0.3)"
        assert isinstance(engine.scheduling, DeadlineScheduling)

    def test_explicit_edges_and_placement(self, patterns):
        overlay = (
            OverlayBuilder()
            .edges(3, [(0, 1), (1, 2)])
            .subscribe(2, patterns[0])
            .subscribe(0, patterns[1])
            .build_overlay()
        )
        assert overlay.brokers[2].local_subscribers == [0]
        assert overlay.brokers[0].local_subscribers == [1]

    def test_builder_is_reusable(self, corpus, patterns):
        builder = self.build_base(patterns).provider(corpus).advertisement(
            CommunityPolicy(0.5)
        )
        first = builder.build_overlay()
        second = builder.build_overlay()
        assert first is not second
        assert table_snapshot(first) == table_snapshot(second)

    def test_build_engine_reuses_overlay(self, patterns):
        builder = self.build_base(patterns)
        overlay = builder.build_overlay()
        engine_a = builder.build_engine(overlay)
        engine_b = builder.build_engine(overlay)
        assert engine_a is not engine_b
        assert engine_a.overlay is overlay and engine_b.overlay is overlay

    def test_missing_provider_fails_at_build(self, patterns):
        builder = self.build_base(patterns).advertisement(
            CommunityPolicy(0.5)
        )
        with pytest.raises(ValueError):
            builder.build_overlay()

    def test_repr_mentions_policies(self, patterns):
        builder = self.build_base(patterns).advertisement("community")
        assert "CommunityPolicy" in repr(builder)


class TestDeadlineTieBreaking:
    """EDF's underspecified corners: equal deadlines and mixed fallbacks."""

    def test_equal_deadlines_keep_arrival_order(self):
        queue = [
            _StubJob(deadline=5.0),
            _StubJob(deadline=5.0),
            _StubJob(deadline=5.0),
        ]
        assert DeadlineScheduling().select(queue, 0.0) == 0

    def test_strictly_earlier_deadline_beats_arrival_order(self):
        queue = [_StubJob(deadline=5.0), _StubJob(deadline=5.0 - 1e-9)]
        assert DeadlineScheduling().select(queue, 0.0) == 1

    def test_deadline_ties_fallback_jobs_keep_arrival_order(self):
        # With infinite default slack every no-deadline job ties at +inf;
        # the head of the queue must win, making EDF a drop-in FIFO.
        queue = [_StubJob(), _StubJob(), _StubJob()]
        assert DeadlineScheduling().select(queue, 0.0) == 0

    def test_explicit_deadline_ties_with_fallback_deadline(self):
        # published_at + slack == the explicit deadline: arrival order
        # decides, so the earlier-queued fallback job is served first.
        queue = [_StubJob(published_at=2.0), _StubJob(deadline=12.0)]
        assert DeadlineScheduling(default_slack=10.0).select(queue, 0.0) == 0
        # Swap the arrival order and the explicit deadline wins the tie.
        swapped = [_StubJob(deadline=12.0), _StubJob(published_at=2.0)]
        assert (
            DeadlineScheduling(default_slack=10.0).select(swapped, 0.0) == 0
        )

    def test_past_deadlines_still_order_most_overdue_first(self):
        queue = [_StubJob(deadline=4.0), _StubJob(deadline=1.0)]
        # Both are overdue at now=9; the most overdue job is served first.
        assert DeadlineScheduling().select(queue, 9.0) == 1

    def test_default_slack_validation(self):
        with pytest.raises(ValueError):
            DeadlineScheduling(default_slack=-1.0)
