"""Hypothesis strategies for random documents and tree patterns.

A small tag alphabet is deliberate: collisions between document tags and
pattern tags must be likely, or every random pattern would trivially match
nothing.
"""

from __future__ import annotations

import os

from hypothesis import strategies as st

from repro.core.labels import DESCENDANT, WILDCARD
from repro.core.pattern import PatternNode, TreePattern
from repro.xmltree.tree import XMLTree

TAGS = ("a", "b", "c", "d", "e")


def property_max_examples(base: int) -> int:
    """Example budget for a pinned property-suite test.

    Tier-1 runs keep the per-test baseline so the suite stays fast; the
    CI property-test job exports ``HYPOTHESIS_PROFILE=thorough`` (see
    ``tests/conftest.py``) and gets an 8× deeper sweep.
    """
    if os.environ.get("HYPOTHESIS_PROFILE", "") == "thorough":
        return base * 8
    return base


@st.composite
def xml_trees(draw, max_depth: int = 4, max_children: int = 3) -> XMLTree:
    """Random small documents over the shared tag alphabet."""

    def subtree(depth: int):
        tag = draw(st.sampled_from(TAGS))
        if depth >= max_depth:
            return tag
        n_children = draw(st.integers(min_value=0, max_value=max_children))
        if n_children == 0:
            return tag
        return (tag, [subtree(depth + 1) for _ in range(n_children)])

    return XMLTree.from_nested(subtree(1), doc_id=draw(st.integers(0, 10_000)))


@st.composite
def pattern_nodes(draw, max_depth: int = 3, max_children: int = 2) -> PatternNode:
    """Random pattern subtrees with tags, wildcards and descendant nodes."""
    kind = draw(
        st.sampled_from(("tag", "tag", "tag", "wildcard", "descendant"))
    )
    if kind == "descendant" and max_depth > 1:
        child = draw(
            pattern_nodes(max_depth=max_depth - 1, max_children=max_children)
        )
        while child.label == DESCENDANT:
            child = draw(
                pattern_nodes(max_depth=max_depth - 1, max_children=max_children)
            )
        return PatternNode(DESCENDANT, (child,))
    label = WILDCARD if kind == "wildcard" else draw(st.sampled_from(TAGS))
    if max_depth <= 1:
        return PatternNode(label)
    n_children = draw(st.integers(min_value=0, max_value=max_children))
    children = tuple(
        draw(pattern_nodes(max_depth=max_depth - 1, max_children=max_children))
        for _ in range(n_children)
    )
    return PatternNode(label, children)


@st.composite
def tree_patterns(draw, max_root_children: int = 2) -> TreePattern:
    """Random complete tree patterns."""
    n = draw(st.integers(min_value=1, max_value=max_root_children))
    return TreePattern(tuple(draw(pattern_nodes()) for _ in range(n)))
