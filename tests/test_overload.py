"""Overload survival: bounded queues, back-pressure, fair scheduling.

Unit edge cases of the overload layer — the property suite
(``tests/test_overload_properties.py``) pins the conservation and
replay invariants; here each mechanism is exercised at its boundary:
capacity 0 and 1, drop-oldest around an in-service batch, NACKs of
multi-destination documents, aging promotion and its ties, and the
zero-denominator stats states bounded queues can now reach.
"""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.routing.broker import ClassLatency, LatencyStats
from repro.routing.builder import OverlayBuilder
from repro.routing.engine import (
    BatchServiceModel,
    ClosedLoopSource,
    DeliveryEngine,
    LinkModel,
    ServiceModel,
)
from repro.routing.overlay import BrokerOverlay
from repro.routing.policy import (
    OVERFLOW_MODES,
    PriorityScheduling,
    QueuePolicy,
    WeightedFairScheduling,
    resolve_queue_policy,
)
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.parser import parse_xml


def doc(xml: str, doc_id: int = 0):
    return parse_xml(xml, doc_id=doc_id)


def single_broker():
    """One broker, one subscriber wanting //b."""
    overlay = BrokerOverlay.chain(1)
    overlay.attach(0, parse_xpath("//b"))
    overlay.advertise_subscriptions()
    return overlay


def conserved(stats: LatencyStats) -> None:
    """The drained conservation identity every run must satisfy."""
    assert stats.in_flight_jobs == 0
    assert stats.offered_jobs == (
        stats.completed_jobs + stats.dropped_jobs + stats.nacked_jobs
    )


class TestQueuePolicy:
    def test_default_is_unbounded(self):
        policy = QueuePolicy()
        assert policy.capacity is None
        assert not policy.bounded
        assert policy.admits(10**9)

    def test_admits_strictly_below_capacity(self):
        policy = QueuePolicy(2)
        assert policy.admits(0)
        assert policy.admits(1)
        assert not policy.admits(2)
        assert not QueuePolicy(0).admits(0)

    def test_rejects_bad_capacity_and_overflow(self):
        with pytest.raises(ValueError):
            QueuePolicy(-1)
        with pytest.raises(ValueError):
            QueuePolicy(4, "spill")
        assert set(OVERFLOW_MODES) == {"drop-new", "drop-oldest", "nack"}

    def test_resolve_passthrough_and_shorthands(self):
        policy = QueuePolicy(8, "nack")
        assert resolve_queue_policy(policy) is policy
        assert resolve_queue_policy(None) == QueuePolicy()
        assert resolve_queue_policy(8) == QueuePolicy(8)
        assert resolve_queue_policy(8, overflow="nack") == policy

    def test_resolve_rejects_stray_overrides_and_types(self):
        with pytest.raises(ValueError):
            resolve_queue_policy(QueuePolicy(8), overflow="nack")
        with pytest.raises(ValueError):
            resolve_queue_policy(None, overflow="nack")
        with pytest.raises(ValueError):
            resolve_queue_policy(8, capacity=9)
        with pytest.raises(TypeError):
            resolve_queue_policy(True)
        with pytest.raises(TypeError):
            resolve_queue_policy("bounded")


class TestBoundedQueues:
    def service_times(self):
        return ServiceModel(base=1.0, per_match=0.0)

    def test_capacity_zero_is_a_loss_system(self):
        # The in-service job is not queued: one serviced, the two
        # arrivals that found the broker busy are lost.
        engine = DeliveryEngine(
            single_broker(),
            service=self.service_times(),
            queue_policy=QueuePolicy(0),
        )
        for i, time in enumerate((0.0, 0.2, 0.4)):
            engine.publish(doc("<b/>", doc_id=i), 0, time)
        stats = engine.run()
        conserved(stats)
        assert stats.completed_jobs == 1
        assert stats.dropped_jobs == 2
        assert stats.dropped_by_broker == {0: 2}
        assert stats.deliveries == 1
        assert stats.peak_queue_depth == 1

    def test_capacity_one_drop_new_keeps_first_queued(self):
        engine = DeliveryEngine(
            single_broker(),
            service=self.service_times(),
            queue_policy=QueuePolicy(1, "drop-new"),
        )
        for i, time in enumerate((0.0, 0.2, 0.4)):
            engine.publish(doc("<b/>", doc_id=i), 0, time)
        stats = engine.run()
        conserved(stats)
        assert stats.completed_jobs == 2
        assert stats.dropped_jobs == 1
        assert sorted(engine.delivered_sets()[1]) == [0]
        assert engine.delivered_sets()[2] == frozenset()

    def test_capacity_one_drop_oldest_keeps_last_arrival(self):
        engine = DeliveryEngine(
            single_broker(),
            service=self.service_times(),
            queue_policy=QueuePolicy(1, "drop-oldest"),
        )
        for i, time in enumerate((0.0, 0.2, 0.4)):
            engine.publish(doc("<b/>", doc_id=i), 0, time)
        stats = engine.run()
        conserved(stats)
        assert stats.completed_jobs == 2
        assert stats.dropped_jobs == 1
        assert engine.delivered_sets()[1] == frozenset()
        assert sorted(engine.delivered_sets()[2]) == [0]

    def test_capacity_zero_drop_oldest_degrades_to_drop_new(self):
        # Nothing is queued to evict, so the arrival itself is lost.
        engine = DeliveryEngine(
            single_broker(),
            service=self.service_times(),
            queue_policy=QueuePolicy(0, "drop-oldest"),
        )
        engine.publish(doc("<b/>", doc_id=0), 0, 0.0)
        engine.publish(doc("<b/>", doc_id=1), 0, 0.5)
        stats = engine.run()
        conserved(stats)
        assert stats.dropped_jobs == 1
        assert engine.delivered_sets()[1] == frozenset()

    def test_drop_oldest_never_evicts_the_in_service_batch(self):
        # A draining batch is work in progress, not queue occupancy:
        # eviction only ever touches waiting jobs.
        engine = DeliveryEngine(
            single_broker(),
            service=BatchServiceModel(
                base=1.0, per_match=0.0, per_doc=0.0, max_batch=2
            ),
            queue_policy=QueuePolicy(1, "drop-oldest"),
        )
        engine.publish(doc("<b/>", doc_id=0), 0, 0.0)  # in service
        engine.publish(doc("<b/>", doc_id=1), 0, 0.2)  # queued
        engine.publish(doc("<b/>", doc_id=2), 0, 0.4)  # evicts doc 1
        stats = engine.run()
        conserved(stats)
        assert stats.dropped_jobs == 1
        assert sorted(engine.delivered_sets()[0]) == [0]
        assert engine.delivered_sets()[1] == frozenset()
        assert sorted(engine.delivered_sets()[2]) == [0]

    def test_peak_depth_stays_at_bound_under_overflow(self):
        engine = DeliveryEngine(
            single_broker(),
            service=self.service_times(),
            queue_policy=QueuePolicy(2, "drop-new"),
        )
        for i in range(10):
            engine.publish(doc("<b/>", doc_id=i), 0, 0.1 * i)
        stats = engine.run()
        conserved(stats)
        # capacity waiting + one in service
        assert stats.peak_queue_depth == 3

    def test_all_dropped_class_has_no_latency_digest(self):
        # Class 1 only ever arrives at a busy broker with a full queue:
        # it is accounted in the drop ledger, never in latencies.
        engine = DeliveryEngine(
            single_broker(),
            service=self.service_times(),
            queue_policy=QueuePolicy(0),
        )
        engine.publish(doc("<b/>", doc_id=0), 0, 0.0, priority_class=0)
        engine.publish(doc("<b/>", doc_id=1), 0, 0.3, priority_class=1)
        engine.publish(doc("<b/>", doc_id=2), 0, 0.6, priority_class=1)
        stats = engine.run()
        conserved(stats)
        assert stats.dropped_by_class == {1: 2}
        assert stats.offered_by_class == {0: 1, 1: 2}
        assert 1 not in stats.latency_by_class
        assert 1 not in stats.completed_by_class
        assert stats.completed_share_by_class == {0: 1.0}
        assert stats.admission_ratio == pytest.approx(1 / 3)


class TestNacks:
    def test_nack_counts_separately_from_drops(self):
        engine = DeliveryEngine(
            single_broker(),
            service=ServiceModel(base=1.0, per_match=0.0),
            queue_policy=QueuePolicy(0, "nack"),
        )
        for i, time in enumerate((0.0, 0.2, 0.4)):
            engine.publish(doc("<b/>", doc_id=i), 0, time)
        stats = engine.run()
        conserved(stats)
        assert stats.nacked_jobs == 2
        assert stats.dropped_jobs == 0
        assert stats.nacked_by_class == {0: 2}

    def test_nack_of_multi_destination_document(self):
        # chain 0—1—2, a subscriber at each end.  The copy forwarded to
        # broker 1 bounces off its full queue, so broker 2's subscriber
        # is never reached — but the local delivery at broker 0 stands
        # and every copy is accounted.
        overlay = BrokerOverlay.chain(3)
        overlay.attach(0, parse_xpath("//b"))
        overlay.attach(2, parse_xpath("//b"))
        overlay.advertise_subscriptions()
        engine = DeliveryEngine(
            overlay,
            service=ServiceModel(base=1.0, per_match=0.0),
            links=LinkModel(default=0.5),
            queue_policy=QueuePolicy(0, "nack"),
        )
        index = engine.publish(doc("<b/>", doc_id=0), 0, 0.0)
        # Keep broker 1 busy over the copy's arrival at t=1.5.
        blocker = engine.publish(doc("<c/>", doc_id=1), 1, 1.2)
        stats = engine.run()
        conserved(stats)
        assert stats.nacked_jobs == 1
        assert engine.delivered_sets()[index] == frozenset({0})
        assert engine.delivered_sets()[blocker] == frozenset()


class TestClosedLoopSource:
    def test_validates_parameters(self):
        corpus = DocumentCorpus([doc("<b/>")])
        with pytest.raises(ValueError):
            ClosedLoopSource(corpus, initial_window=0.5)
        with pytest.raises(ValueError):
            ClosedLoopSource(corpus, initial_window=4.0, max_window=2.0)
        with pytest.raises(ValueError):
            ClosedLoopSource(corpus, decrease_factor=0.0)
        with pytest.raises(ValueError):
            ClosedLoopSource(corpus, decrease_factor=1.5)
        with pytest.raises(ValueError):
            ClosedLoopSource(corpus, additive_increase=-1.0)
        with pytest.raises(ValueError):
            ClosedLoopSource(corpus, start=-1.0)
        with pytest.raises(ValueError):
            ClosedLoopSource(corpus, feedback_delay=-0.1)
        with pytest.raises(ValueError):
            ClosedLoopSource(corpus, jitter=-0.1)
        with pytest.raises(ValueError):
            ClosedLoopSource(corpus, deadline_slack=-2.0)

    def test_attach_rejects_unknown_broker_and_bad_report_index(self):
        engine = DeliveryEngine(single_broker())
        corpus = DocumentCorpus([doc("<b/>")])
        with pytest.raises(ValueError):
            engine.attach_source(ClosedLoopSource(corpus, at_broker=7))
        with pytest.raises(ValueError):
            engine.source_report(0)

    def test_window_gates_publishing(self):
        # Window 1: each publish waits for the previous document's
        # absorption, so the whole corpus is strictly serialised.
        corpus = DocumentCorpus([doc("<b/>", doc_id=i) for i in range(4)])
        engine = DeliveryEngine(
            single_broker(),
            service=ServiceModel(base=1.0, per_match=0.0),
            queue_policy=QueuePolicy(0),
        )
        source = engine.attach_source(
            ClosedLoopSource(corpus, additive_increase=0.0)
        )
        stats = engine.run()
        conserved(stats)
        report = engine.source_report(source)
        assert report.published == 4
        assert report.pending == 0
        assert report.acked == 4
        assert report.clean_acks == 4
        assert report.outstanding == 0
        # Nothing ever queued: the loop kept the broker at one job.
        assert stats.dropped_jobs == 0
        assert stats.peak_queue_depth == 1
        assert stats.makespan == pytest.approx(4.0)

    def test_window_decreases_once_per_document(self):
        # star: centre 0 forwards to leaves 1..3; two leaves are busy
        # behind capacity-0 nack queues, so the same document draws two
        # NACK signals — one multiplicative decrease, both counted.
        overlay = BrokerOverlay.star(4)
        for leaf in (1, 2, 3):
            overlay.attach(leaf, parse_xpath("//b"))
        overlay.advertise_subscriptions()
        engine = DeliveryEngine(
            overlay,
            service=ServiceModel(base=1.0, per_match=0.0),
            links=LinkModel(default=1.0),
            queue_policy=QueuePolicy(0, "nack"),
        )
        # Copies of the sourced document arrive at the leaves at t=2.0.
        engine.publish(doc("<c/>", doc_id=10), 1, 1.9)
        engine.publish(doc("<c/>", doc_id=11), 2, 1.9)
        corpus = DocumentCorpus([doc("<b/>", doc_id=0)])
        source = engine.attach_source(
            ClosedLoopSource(corpus, at_broker=0, initial_window=4.0)
        )
        stats = engine.run()
        conserved(stats)
        report = engine.source_report(source)
        assert report.nack_signals == 2
        assert report.nacked_documents == 1
        assert report.window == pytest.approx(2.0)
        assert report.acked == 1
        assert report.clean_acks == 0

    def test_silent_drops_mark_absorption_dirty(self):
        # drop-new loses copies without NACKs: the loop sees no
        # decrease signal, but the absorption must not grow the window
        # either — loss without detection.
        corpus = DocumentCorpus([doc("<b/>", doc_id=i) for i in range(3)])
        engine = DeliveryEngine(
            single_broker(),
            service=ServiceModel(base=1.0, per_match=0.0),
            queue_policy=QueuePolicy(0, "drop-new"),
        )
        source = engine.attach_source(
            ClosedLoopSource(corpus, initial_window=3.0, max_window=8.0)
        )
        stats = engine.run()
        conserved(stats)
        report = engine.source_report(source)
        assert stats.dropped_jobs == 2
        assert report.nack_signals == 0
        assert report.acked == 3
        assert report.clean_acks == 1
        # Exactly one clean absorption grew the window from 3.0.
        assert report.window == pytest.approx(3.0 + 1.0 / 3.0)


class TestAging:
    @dataclass
    class Job:
        arrived_at: float
        priority_class: int = 0
        deadline: Optional[float] = None
        published_at: float = 0.0

    def test_rejects_negative_aging(self):
        with pytest.raises(ValueError):
            PriorityScheduling(aging=-0.5)

    def test_aging_promotes_a_long_waiter(self):
        queue = [
            self.Job(arrived_at=0.0, priority_class=1),
            self.Job(arrived_at=9.5, priority_class=0),
        ]
        heavy = PriorityScheduling({0: 5.0, 1: 1.0})
        assert heavy.select(queue, 10.0) == 1
        aged = PriorityScheduling({0: 5.0, 1: 1.0}, aging=0.5)
        # 1 + 0.5*10 = 6 beats 5 + 0.5*0.5
        assert aged.select(queue, 10.0) == 0

    def test_effective_weight_ties_break_by_arrival_order(self):
        # Queue position order *is* (time, seq) order: equal effective
        # weights must pick the earliest position, with or without
        # aging in play.
        queue = [
            self.Job(arrived_at=1.0, priority_class=0),
            self.Job(arrived_at=1.0, priority_class=0),
            self.Job(arrived_at=1.0, priority_class=0),
        ]
        assert PriorityScheduling({0: 2.0}, aging=1.0).select(queue, 5.0) == 0
        # A later arrival of a heavier class ties an aged lighter one
        # exactly: the earlier *position* wins.
        tie = [
            self.Job(arrived_at=0.0, priority_class=1),
            self.Job(arrived_at=2.0, priority_class=0),
        ]
        policy = PriorityScheduling({0: 3.0, 1: 1.0}, aging=1.0)
        # effective: 1 + 2.0 = 3.0 vs 3 + 0.0 = 3.0 -> position 0
        assert policy.select(tie, 2.0) == 0

    def test_aging_raises_low_class_share_under_overload(self):
        corpus = DocumentCorpus(
            [doc("<b/>", doc_id=i) for i in range(300)]
        )
        shares = []
        for aging in (0.0, 3.0):
            engine = DeliveryEngine(
                single_broker(),
                service=ServiceModel(base=0.5, per_match=0.0),
                scheduling=PriorityScheduling({0: 5.0, 1: 1.0}, aging=aging),
                queue_policy=QueuePolicy(40, "drop-oldest"),
            )
            # Poisson arrivals: exact uniform spacing locks service and
            # arrival parity together and masks the promotion.
            engine.publish_corpus(
                corpus, rate=4.0, arrivals="poisson", seed=7, classes=(0, 1)
            )
            stats = engine.run()
            conserved(stats)
            shares.append(stats.completed_share_by_class.get(1, 0.0))
        assert shares[1] > shares[0]


class TestWeightedFairScheduling:
    @dataclass
    class Job:
        arrived_at: float
        priority_class: int = 0
        deadline: Optional[float] = None
        published_at: float = 0.0

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            WeightedFairScheduling({0: 0.0})
        with pytest.raises(ValueError):
            WeightedFairScheduling(default_weight=-1.0)

    def test_serves_smallest_share_per_weight(self):
        queue = [
            self.Job(arrived_at=0.0, priority_class=0),
            self.Job(arrived_at=0.1, priority_class=0),
            self.Job(arrived_at=0.2, priority_class=1),
        ]
        policy = WeightedFairScheduling({0: 3.0, 1: 1.0})
        # No history: all shares zero, earliest position wins.
        assert policy.select_shares(queue, 1.0, {}) == 0
        # Class 0 already got 3 services per its weight 3 (share 1.0);
        # class 1 has share 0 -> its first job is due.
        assert policy.select_shares(queue, 1.0, {0: 3, 1: 0}) == 2
        # FIFO within a class: position 0 before position 1.
        assert policy.select_shares(queue, 1.0, {0: 0, 1: 5}) == 0

    def test_select_defers_to_share_form(self):
        queue = [self.Job(arrived_at=0.0, priority_class=4)]
        policy = WeightedFairScheduling()
        assert policy.uses_service_shares
        assert policy.select(queue, 0.0) == 0

    def test_long_run_shares_lean_towards_weights(self):
        corpus = DocumentCorpus(
            [doc("<b/>", doc_id=i) for i in range(300)]
        )
        engine = DeliveryEngine(
            single_broker(),
            service=ServiceModel(base=0.5, per_match=0.0),
            scheduling=WeightedFairScheduling({0: 3.0, 1: 1.0}),
            queue_policy=QueuePolicy(10, "drop-oldest"),
        )
        engine.publish_corpus(corpus, rate=20.0, classes=(0, 1))
        stats = engine.run()
        conserved(stats)
        shares = stats.completed_share_by_class
        assert shares[0] > 0.6
        assert shares[1] > 0.1


class TestZeroDenominatorGuards:
    def test_empty_stats_expose_safe_ratios(self):
        stats = LatencyStats(
            documents=0,
            deliveries=0,
            makespan=0.0,
            latency_p50=0.0,
            latency_p95=0.0,
            latency_p99=0.0,
            latency_mean=0.0,
            latency_max=0.0,
            queue_delay_mean=0.0,
            queue_delay_p95=0.0,
            queue_delay_max=0.0,
        )
        assert stats.throughput == 0.0
        assert stats.delivery_throughput == 0.0
        assert stats.offered_throughput == 0.0
        assert stats.admitted_throughput == 0.0
        assert stats.mean_batch_size == 0.0
        assert stats.utilization == {}
        assert stats.admission_ratio == 1.0
        assert stats.completed_share_by_class == {}
        assert stats.in_flight_jobs == 0
        assert stats.admitted_jobs == 0

    def test_empty_class_latency_digest_is_zeroed(self):
        digest = ClassLatency.of([])
        assert digest.deliveries == 0
        assert digest.p50 == digest.p99 == digest.mean == digest.max == 0.0

    def test_run_with_no_deliveries_and_drops_stays_guarded(self):
        # No subscribers anywhere and a loss queue: deliveries are
        # zero, most offered copies die, and every derived ratio must
        # still be well-defined.
        overlay = BrokerOverlay.chain(1)
        overlay.attach(0, parse_xpath("/z"))
        overlay.advertise_subscriptions()
        engine = DeliveryEngine(
            overlay,
            service=ServiceModel(base=1.0, per_match=0.0),
            queue_policy=QueuePolicy(0),
        )
        for i in range(3):
            engine.publish(doc("<b/>", doc_id=i), 0, 0.2 * i)
        stats = engine.run()
        conserved(stats)
        assert stats.deliveries == 0
        assert stats.latency_by_class == {}
        assert stats.latency_p99 == 0.0
        assert stats.admission_ratio == pytest.approx(1 / 3)
        assert 0.0 <= stats.utilization[0] <= 1.0
        assert stats.completed_share_by_class == {0: 1.0}

    def test_idle_engine_stats_are_all_zero(self):
        stats = DeliveryEngine(single_broker()).run()
        assert stats.offered_jobs == 0
        assert stats.admission_ratio == 1.0
        assert stats.completed_share_by_class == {}
        conserved(stats)


class TestBuilderFluency:
    def patterns(self):
        return [parse_xpath("//b"), parse_xpath("/a")]

    def test_queue_policy_accepts_specs_and_overrides(self):
        builder = (
            OverlayBuilder()
            .topology("chain", 3)
            .subscriptions(self.patterns())
            .queue_policy(4, overflow="nack")
        )
        overlay, engine = builder.build()
        assert engine.queue_policy == QueuePolicy(4, "nack")
        # And an instance passes through untouched.
        builder.queue_policy(QueuePolicy(2, "drop-oldest"))
        assert builder.build_engine(overlay).queue_policy == QueuePolicy(
            2, "drop-oldest"
        )

    def test_sources_attach_to_every_built_engine(self):
        corpus = DocumentCorpus([doc("<b/>", doc_id=i) for i in range(5)])
        builder = (
            OverlayBuilder()
            .topology("chain", 2)
            .subscriptions(self.patterns())
            .service(ServiceModel(base=0.5, per_match=0.0))
            .queue_policy(1, overflow="nack")
            .sources(ClosedLoopSource(corpus, at_broker=0, seed=3))
        )
        overlay = builder.build_overlay()
        first = builder.build_engine(overlay)
        second = builder.build_engine(overlay)
        for engine in (first, second):
            stats = engine.run()
            conserved(stats)
            assert engine.source_report(0).published == 5
        # Fresh engines, independent loops: both replay identically.
        assert first.source_report(0) == second.source_report(0)
