"""SampleView algebra: aligned unions/intersections and cardinality
estimation over shared-hash distinct samples."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synopsis.hashes import DistinctHasher, HashSample
from repro.synopsis.setops import SampleView, intersect_views, union_views


def view_of(hasher, ids, capacity=1000):
    sample = HashSample(hasher, capacity)
    for x in ids:
        sample.insert(x)
    return SampleView.of_hash_sample(sample)


class TestConstruction:
    def test_of_set_is_exact(self):
        view = SampleView.of_set([1, 2, 3])
        assert view.level == 0
        assert view.estimate_cardinality() == 3.0

    def test_empty(self):
        view = SampleView.empty()
        assert view.is_empty()
        assert view.estimate_cardinality() == 0.0

    def test_leveled_view_needs_hasher(self):
        with pytest.raises(ValueError):
            SampleView(frozenset({1}), level=2, hasher=None)

    def test_of_hash_sample(self):
        hasher = DistinctHasher(1)
        view = view_of(hasher, range(10))
        assert view.ids == frozenset(range(10))


class TestAlignment:
    def test_at_level_same(self):
        view = SampleView.of_set([1, 2])
        assert view.at_level(0) == {1, 2}

    def test_at_level_lower_rejected(self):
        hasher = DistinctHasher(2)
        view = SampleView(frozenset({1}), level=3, hasher=hasher)
        with pytest.raises(ValueError):
            view.at_level(1)

    def test_at_level_filters(self):
        hasher = DistinctHasher(3)
        ids = frozenset(range(100))
        view = SampleView(ids, level=0, hasher=hasher)
        raised = view.at_level(2)
        assert raised == {x for x in ids if hasher.level_of(x) >= 2}

    def test_empty_view_aligns_to_any_level(self):
        # An empty level-0 view without a hasher must still combine with
        # leveled views (SEL produces these constantly).
        hasher = DistinctHasher(4)
        leveled = SampleView(frozenset({1, 2}), level=2, hasher=hasher)
        union = SampleView.empty().union(leveled)
        assert union.level == 2
        assert union.ids == {1, 2}


class TestSetSemantics:
    def test_union_level0(self):
        a = SampleView.of_set([1, 2])
        b = SampleView.of_set([2, 3])
        assert a.union(b).ids == {1, 2, 3}

    def test_intersect_level0(self):
        a = SampleView.of_set([1, 2])
        b = SampleView.of_set([2, 3])
        assert a.intersect(b).ids == {2}

    def test_union_views_empty_sequence(self):
        assert union_views([]).is_empty()

    def test_intersect_views_requires_operand(self):
        with pytest.raises(ValueError):
            intersect_views([])

    def test_union_many(self):
        views = [SampleView.of_set([i]) for i in range(5)]
        assert union_views(views).ids == {0, 1, 2, 3, 4}

    def test_intersect_many(self):
        views = [SampleView.of_set(range(i, i + 10)) for i in range(3)]
        assert intersect_views(views).ids == {2, 3, 4, 5, 6, 7, 8, 9}

    def test_jaccard_identical(self):
        a = SampleView.of_set([1, 2, 3])
        assert a.jaccard(SampleView.of_set([1, 2, 3])) == 1.0

    def test_jaccard_disjoint(self):
        a = SampleView.of_set([1])
        assert a.jaccard(SampleView.of_set([2])) == 0.0

    def test_jaccard_both_empty(self):
        assert SampleView.empty().jaccard(SampleView.empty()) == 1.0

    def test_equality(self):
        assert SampleView.of_set([1]) == SampleView.of_set([1])
        assert SampleView.of_set([1]) != SampleView.of_set([2])


class TestLeveledSemantics:
    def test_union_aligns_to_max_level(self):
        hasher = DistinctHasher(5)
        low = SampleView(frozenset(range(50)), level=0, hasher=hasher)
        high_ids = frozenset(
            x for x in range(50, 100) if hasher.level_of(x) >= 2
        )
        high = SampleView(high_ids, level=2, hasher=hasher)
        union = low.union(high)
        assert union.level == 2
        expected = {x for x in range(50) if hasher.level_of(x) >= 2} | high_ids
        assert union.ids == expected

    def test_estimate_scales_with_level(self):
        hasher = DistinctHasher(6)
        view = SampleView(frozenset({1, 2, 3}), level=4, hasher=hasher)
        assert view.estimate_cardinality() == 3 * 16.0

    def test_coherence_of_expression(self):
        """(A ∪ B) ∩ C on views equals the filtered true expression."""
        hasher = DistinctHasher(7)
        a = view_of(hasher, range(0, 1_000), capacity=64)
        b = view_of(hasher, range(500, 1_500), capacity=64)
        c = view_of(hasher, range(800, 2_000), capacity=64)
        result = a.union(b).intersect(c)
        truth = (set(range(0, 1_500))) & set(range(800, 2_000))
        expected = {x for x in truth if hasher.level_of(x) >= result.level}
        assert result.ids == expected


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.sets(st.integers(0, 500), max_size=80),
        st.sets(st.integers(0, 500), max_size=80),
        st.integers(0, 2**32),
        st.integers(1, 32),
    )
    def test_union_intersect_coherence(self, xs, ys, seed, capacity):
        hasher = DistinctHasher(seed)
        a = view_of(hasher, xs, capacity)
        b = view_of(hasher, ys, capacity)
        union = a.union(b)
        inter = a.intersect(b)
        level_u = union.level
        level_i = inter.level
        assert union.ids == {
            x for x in (xs | ys) if hasher.level_of(x) >= level_u
        }
        assert inter.ids == {
            x for x in (xs & ys) if hasher.level_of(x) >= level_i
        }

    @settings(max_examples=100, deadline=None)
    @given(st.sets(st.integers(0, 200), max_size=50))
    def test_level0_estimates_exact(self, xs):
        assert SampleView.of_set(xs).estimate_cardinality() == float(len(xs))
