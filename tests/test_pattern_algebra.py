"""Pattern algebra: root-merge conjunction, path construction, relabeling."""

import pytest
from hypothesis import given

from repro.core.pattern import PatternError
from repro.core.pattern_algebra import (
    merge_patterns,
    path_pattern,
    pattern_from_paths,
    relabel,
    trivially_contains,
)
from repro.core.pattern_parser import parse_xpath, to_xpath
from repro.xmltree.matcher import matches
from tests.strategies import tree_patterns, xml_trees


class TestMergePatterns:
    def test_merge_two(self):
        merged = merge_patterns(parse_xpath("/a"), parse_xpath("//b"))
        assert len(merged.root_children) == 2

    def test_merge_is_flat(self):
        merged = merge_patterns(parse_xpath("/.[a][b]"), parse_xpath("/c"))
        assert len(merged.root_children) == 3

    def test_merge_deduplicates(self):
        merged = merge_patterns(parse_xpath("/a/b"), parse_xpath("/a/b"))
        assert merged == parse_xpath("/a/b")

    def test_merge_single(self):
        pattern = parse_xpath("/a")
        assert merge_patterns(pattern) == pattern

    def test_merge_none_rejected(self):
        with pytest.raises(PatternError):
            merge_patterns()

    def test_merge_semantics_is_conjunction(self, figure1_document):
        pa = parse_xpath("/media/CD/*/last/Mozart")
        pd = parse_xpath("//composer[last/Mozart]")
        merged = merge_patterns(pa, pd)
        assert matches(figure1_document, merged)

    def test_merge_with_nonmatching_is_false(self, figure1_document):
        pa = parse_xpath("/media/CD/*/last/Mozart")
        pb = parse_xpath("//CD/Mozart")
        merged = merge_patterns(pa, pb)
        assert not matches(figure1_document, merged)

    @given(tree_patterns(), tree_patterns(), xml_trees())
    def test_conjunction_property(self, p, q, tree):
        merged = merge_patterns(p, q)
        assert matches(tree, merged) == (matches(tree, p) and matches(tree, q))


class TestPathPattern:
    def test_simple_path(self):
        assert to_xpath(path_pattern(["a", "b"])) == "/a/b"

    def test_descendant_step(self):
        assert to_xpath(path_pattern(["a", "//", "b"])) == "/a//b"

    def test_unrooted(self):
        assert to_xpath(path_pattern(["a"], rooted=False)) == "//a"

    def test_unrooted_with_leading_descendant_not_doubled(self):
        assert to_xpath(path_pattern(["//", "a"], rooted=False)) == "//a"

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            path_pattern([])


class TestPatternFromPaths:
    def test_shared_prefix_merged(self):
        pattern = pattern_from_paths([["a", "b"], ["a", "d"]])
        assert pattern == parse_xpath("/a[b][d]")

    def test_deep_shared_prefix(self):
        pattern = pattern_from_paths([["a", "c", "f"], ["a", "c", "o"]])
        assert pattern == parse_xpath("/a/c[f][o]")

    def test_disjoint_paths(self):
        pattern = pattern_from_paths([["a", "b"], ["c", "d"]])
        assert pattern == parse_xpath("/.[a/b][c/d]")


class TestRelabel:
    def test_relabels_tags(self):
        pattern = parse_xpath("/a/b")
        assert relabel(pattern, {"b": "z"}) == parse_xpath("/a/z")

    def test_keeps_operators(self):
        pattern = parse_xpath("//a/*")
        relabeled = relabel(pattern, {"a": "z"})
        assert relabeled == parse_xpath("//z/*")

    def test_unmapped_kept(self):
        pattern = parse_xpath("/a/b")
        assert relabel(pattern, {}) == pattern


class TestTriviallyContains:
    def test_wildcard_contains_tag(self):
        outer = parse_xpath("/*").root_children[0]
        inner = parse_xpath("/a").root_children[0]
        assert trivially_contains(outer, inner)

    def test_tag_not_contains_other_tag(self):
        outer = parse_xpath("/a").root_children[0]
        inner = parse_xpath("/b").root_children[0]
        assert not trivially_contains(outer, inner)

    def test_descendant_skips_levels(self):
        outer = parse_xpath("//c").root_children[0]
        inner = parse_xpath("/a/b/c").root_children[0]
        assert trivially_contains(outer, inner)

    def test_smaller_pattern_contains_larger(self):
        outer = parse_xpath("/a").root_children[0]
        inner = parse_xpath("/a[b][c]").root_children[0]
        assert trivially_contains(outer, inner)

    def test_larger_not_contains_smaller(self):
        outer = parse_xpath("/a[b][c]").root_children[0]
        inner = parse_xpath("/a").root_children[0]
        assert not trivially_contains(outer, inner)
