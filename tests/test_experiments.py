"""Experiment harness and figure runners (tiny-scale integration tests)."""

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    ALL_FIGURES,
    figure4,
    figure5,
    figure6,
    figure10,
    setup_summary,
)
from repro.experiments.harness import (
    build_synopsis,
    clear_caches,
    evaluate,
    prepare,
)
from repro.experiments.report import figure_to_csv, render_figure, render_summary


@pytest.fixture(scope="module")
def tiny_nitf():
    return ExperimentConfig.tiny("nitf")


@pytest.fixture(scope="module")
def prepared(tiny_nitf):
    return prepare(tiny_nitf)


class TestConfig:
    def test_unknown_dtd_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dtd_name="dblp")

    def test_presets_scale(self):
        quick = ExperimentConfig.quick("nitf")
        paper = ExperimentConfig.paper("nitf")
        assert paper.n_documents > quick.n_documents
        assert paper.n_positive > quick.n_positive

    def test_doc_config_defaults_per_dtd(self):
        nitf = ExperimentConfig.quick("nitf")
        xcbl = ExperimentConfig.quick("xcbl")
        assert nitf.doc_config != xcbl.doc_config

    def test_overrides(self):
        config = ExperimentConfig.quick("nitf", n_documents=42)
        assert config.n_documents == 42

    def test_cache_key_distinguishes(self):
        a = ExperimentConfig.tiny("nitf")
        b = ExperimentConfig.tiny("xcbl")
        assert a.cache_key != b.cache_key


class TestPrepare:
    def test_counts(self, prepared, tiny_nitf):
        assert len(prepared.documents) == tiny_nitf.n_documents
        assert len(prepared.positive) == tiny_nitf.n_positive
        assert len(prepared.negative) == tiny_nitf.n_negative
        assert len(prepared.pairs) == tiny_nitf.n_pairs

    def test_exact_values_aligned(self, prepared):
        assert len(prepared.exact_positive) == len(prepared.positive)
        assert all(v > 0 for v in prepared.exact_positive)
        assert all(v == 0 for v in prepared.exact_negative)

    def test_exact_metrics_cover_all(self, prepared):
        assert set(prepared.exact_metrics) == {"M1", "M2", "M3"}
        for values in prepared.exact_metrics.values():
            assert len(values) == len(prepared.pairs)

    def test_prepare_cached(self, tiny_nitf):
        assert prepare(tiny_nitf) is prepare(tiny_nitf)

    def test_workload_profile(self, prepared):
        avg, low, high = prepared.workload_profile()
        assert 0 < low <= avg <= high <= 1.0


class TestEvaluate:
    def test_evaluation_cached(self, prepared):
        first = evaluate(prepared, "hashes", 10)
        assert evaluate(prepared, "hashes", 10) is first

    @pytest.mark.parametrize("mode", ["counters", "sets", "hashes"])
    def test_all_modes(self, prepared, mode):
        result = evaluate(prepared, mode, 20)
        assert result.erel_positive.value >= 0.0
        assert result.esqr_negative.value >= 0.0
        assert result.synopsis_size.total > 0
        assert set(result.metric_errors) == {"M1", "M2", "M3"}

    def test_unbounded_sets_have_zero_positive_error_or_small(self, prepared):
        # With capacity >= corpus size, sets are lossless at path level;
        # only skeletonisation error remains, which is upward.
        result = evaluate(prepared, "sets", prepared.config.n_documents)
        assert result.erel_positive.value < 0.5

    def test_compression_evaluation(self, prepared):
        result = evaluate(prepared, "hashes", 30, alpha=0.5)
        assert result.alpha == 0.5
        assert result.compression_ratio is not None
        assert result.compression_ratio <= 0.75

    def test_build_synopsis_counts_documents(self, prepared):
        synopsis = build_synopsis(prepared, "sets", 100)
        assert synopsis.n_documents == prepared.config.n_documents


class TestFigures:
    def test_figure4_structure(self, tiny_nitf):
        figure = figure4([tiny_nitf])
        assert figure.figure_id == "figure4"
        assert len(figure.series) == 3  # counters, sets, hashes for one DTD
        for series in figure.series:
            assert len(series.xs) == len(tiny_nitf.sizes)

    def test_figure4_counters_flat(self, tiny_nitf):
        figure = figure4([tiny_nitf])
        counters = figure.series_by_label("Counters - NITF")
        assert len(set(counters.ys)) == 1

    def test_figure5_drops_zero_series(self, tiny_nitf):
        figure = figure5([tiny_nitf])
        for series in figure.series:
            assert all(math.isfinite(y) for y in series.ys)

    def test_figure6_x_is_synopsis_size(self, tiny_nitf):
        figure = figure6([tiny_nitf])
        hashes = figure.series_by_label("Hashes - NITF")
        assert all(x > 0 for x in hashes.xs)
        # Larger capacity -> larger synopsis.
        assert hashes.xs == sorted(hashes.xs)

    def test_figure10_alpha_axis(self, tiny_nitf):
        figure = figure10([tiny_nitf])
        erel = figure.series_by_label("Erel - NITF")
        assert erel.xs == [100.0 * a for a in tiny_nitf.alphas]

    def test_all_figures_registry(self):
        assert set(ALL_FIGURES) == {
            "figure4", "figure5", "figure6", "figure7", "figure8",
            "figure9", "figure10",
        }

    def test_metric_figures(self, tiny_nitf):
        for name in ("figure7", "figure8", "figure9"):
            figure = ALL_FIGURES[name]([tiny_nitf])
            assert figure.series
            for series in figure.series:
                assert all(y >= 0 for y in series.ys)

    def test_setup_summary(self, tiny_nitf):
        summary = setup_summary([tiny_nitf])
        stats = summary["nitf"]
        assert stats["documents"] == tiny_nitf.n_documents
        assert stats["max_depth"] <= 10
        assert 0 < stats["positive_avg_selectivity_pct"] <= 100

    def test_series_lookup_missing(self, tiny_nitf):
        figure = figure4([tiny_nitf])
        with pytest.raises(KeyError):
            figure.series_by_label("nope")


class TestReport:
    def test_render_figure(self, tiny_nitf):
        text = render_figure(figure4([tiny_nitf]))
        assert "figure4" in text
        assert "Hashes - NITF" in text
        assert "Erel (%)" in text

    def test_csv(self, tiny_nitf):
        csv = figure_to_csv(figure4([tiny_nitf]))
        lines = csv.strip().splitlines()
        assert lines[0] == "series,x,y"
        assert len(lines) > 1

    def test_render_summary(self, tiny_nitf):
        text = render_summary(setup_summary([tiny_nitf]))
        assert "nitf" in text
        assert "documents" in text

    def test_render_empty_summary(self):
        assert "empty" in render_summary({})


class TestCacheLifecycle:
    def test_clear_caches(self, tiny_nitf):
        prepared = prepare(tiny_nitf)
        clear_caches()
        assert prepare(tiny_nitf) is not prepared
