"""Counter summaries (baseline representation)."""

from repro.synopsis.counters import CounterSummary


class TestCounterSummary:
    def test_starts_at_zero(self):
        assert CounterSummary().count == 0

    def test_initial_value(self):
        assert CounterSummary(5).count == 5

    def test_increment(self):
        counter = CounterSummary()
        counter.increment()
        counter.increment(3)
        assert counter.count == 4

    def test_merge_max(self):
        counter = CounterSummary(2)
        counter.merge_max(CounterSummary(7))
        assert counter.count == 7
        counter.merge_max(CounterSummary(1))
        assert counter.count == 7

    def test_merge_min(self):
        counter = CounterSummary(5)
        counter.merge_min(CounterSummary(3))
        assert counter.count == 3

    def test_copy_independent(self):
        counter = CounterSummary(1)
        clone = counter.copy()
        clone.increment()
        assert counter.count == 1
        assert clone.count == 2

    def test_repr(self):
        assert "3" in repr(CounterSummary(3))
