"""Tree-pattern minimization: equivalence preservation and known cases."""

from hypothesis import given, settings

from repro.core.minimize import is_minimal, minimize
from repro.core.pattern_algebra import merge_patterns
from repro.core.pattern_parser import parse_xpath
from repro.xmltree.matcher import matches
from tests.strategies import tree_patterns, xml_trees


class TestKnownCases:
    def test_duplicate_branch_removed(self):
        assert minimize(parse_xpath("/a[b][b]")) == parse_xpath("/a/b")

    def test_prefix_branch_removed(self):
        assert minimize(parse_xpath("/a[b][b/c]")) == parse_xpath("/a/b/c")

    def test_wildcard_branch_removed(self):
        assert minimize(parse_xpath("/a[b][*]")) == parse_xpath("/a/b")

    def test_descendant_branch_removed(self):
        # b/c implies a descendant c somewhere below a.
        assert minimize(parse_xpath("/a[.//c][b/c]")) == parse_xpath("/a/b/c")

    def test_root_level_redundancy(self):
        assert minimize(parse_xpath("/.[a][.//a]")) == parse_xpath("/a")

    def test_nested_redundancy(self):
        assert minimize(parse_xpath("/a/b[c][c/d]")) == parse_xpath("/a/b/c/d")

    def test_independent_branches_kept(self):
        pattern = parse_xpath("/a[b][c]")
        assert minimize(pattern) == pattern

    def test_deep_vs_shallow_same_tag(self):
        pattern = parse_xpath("/a[b/x][b/y]")
        assert minimize(pattern) == pattern  # different constraints: both stay

    def test_merged_self_conjunction_collapses(self):
        p = parse_xpath("/a/b[c][d]")
        assert minimize(merge_patterns(p, p)) == p

    def test_merged_containment_collapses(self):
        broad = parse_xpath("//c")
        narrow = parse_xpath("/a/b/c")
        merged = merge_patterns(broad, narrow)
        assert minimize(merged) == narrow

    def test_is_minimal(self):
        assert is_minimal(parse_xpath("/a[b][c]"))
        assert not is_minimal(parse_xpath("/a[b][b]"))


class TestEquivalencePreservation:
    @settings(max_examples=200, deadline=None)
    @given(tree_patterns(), xml_trees())
    def test_minimization_preserves_semantics(self, pattern, tree):
        assert matches(tree, pattern) == matches(tree, minimize(pattern))

    @settings(max_examples=150, deadline=None)
    @given(tree_patterns())
    def test_never_grows(self, pattern):
        assert minimize(pattern).size() <= pattern.size()

    @settings(max_examples=150, deadline=None)
    @given(tree_patterns())
    def test_idempotent(self, pattern):
        once = minimize(pattern)
        assert minimize(once) == once

    @settings(max_examples=100, deadline=None)
    @given(tree_patterns(), tree_patterns(), xml_trees())
    def test_minimized_merge_is_conjunction(self, p, q, tree):
        merged = minimize(merge_patterns(p, q))
        assert matches(tree, merged) == (matches(tree, p) and matches(tree, q))
