"""DTD model, parser, and the built-in paper-scale document types."""

import pytest

from repro.dtd.builtin import (
    NITF_ELEMENT_COUNT,
    XCBL_ELEMENT_COUNT,
    builtin_dtd,
    nitf_dtd,
    xcbl_dtd,
)
from repro.dtd.model import DTDError, ElementType, Occurs, Particle
from repro.dtd.parser import parse_content_model, parse_dtd


class TestOccurs:
    def test_min_counts(self):
        assert Occurs.ONE.min_count == 1
        assert Occurs.PLUS.min_count == 1
        assert Occurs.OPTIONAL.min_count == 0
        assert Occurs.STAR.min_count == 0

    def test_unbounded(self):
        assert Occurs.STAR.unbounded
        assert Occurs.PLUS.unbounded
        assert not Occurs.ONE.unbounded
        assert not Occurs.OPTIONAL.unbounded


class TestParticle:
    def test_element_needs_name(self):
        with pytest.raises(DTDError):
            Particle("element")

    def test_group_needs_children(self):
        with pytest.raises(DTDError):
            Particle("seq")

    def test_unknown_kind(self):
        with pytest.raises(DTDError):
            Particle("mystery")

    def test_element_names(self):
        particle = Particle(
            "seq",
            children=(
                Particle("element", name="a"),
                Particle(
                    "choice",
                    children=(
                        Particle("element", name="b"),
                        Particle("element", name="a"),
                    ),
                ),
            ),
        )
        assert list(particle.element_names()) == ["a", "b", "a"]

    def test_render(self):
        particle = Particle(
            "seq",
            occurs=Occurs.STAR,
            children=(
                Particle("element", name="a", occurs=Occurs.OPTIONAL),
                Particle("element", name="b"),
            ),
        )
        assert particle.render() == "(a?, b)*"


class TestElementType:
    def test_child_names_distinct_in_order(self):
        model = parse_content_model("(b, c?, (b | d)*)")
        element = ElementType("a", model)
        assert element.child_names() == ("b", "c", "d")

    def test_empty_render(self):
        assert ElementType("a").render() == "<!ELEMENT a EMPTY>"

    def test_pcdata_render(self):
        assert ElementType("a", has_pcdata=True).render() == "<!ELEMENT a (#PCDATA)>"


class TestContentModelParser:
    def test_sequence(self):
        model = parse_content_model("(a, b, c)")
        assert model.kind == "seq"
        assert [c.name for c in model.children] == ["a", "b", "c"]

    def test_choice(self):
        model = parse_content_model("(a | b)")
        assert model.kind == "choice"

    def test_occurs_suffixes(self):
        model = parse_content_model("(a?, b*, c+)")
        assert [c.occurs for c in model.children] == [
            Occurs.OPTIONAL,
            Occurs.STAR,
            Occurs.PLUS,
        ]

    def test_nested_groups(self):
        model = parse_content_model("(a, (b | c)*, d)")
        inner = model.children[1]
        assert inner.kind == "choice"
        assert inner.occurs == Occurs.STAR

    def test_single_item_group_collapsed(self):
        model = parse_content_model("(a)")
        assert model.kind == "element"
        assert model.name == "a"

    def test_single_item_group_with_occurs(self):
        model = parse_content_model("(a)+")
        assert model.kind == "element"
        assert model.occurs == Occurs.PLUS

    def test_mixed_separators_rejected(self):
        with pytest.raises(DTDError):
            parse_content_model("(a, b | c)")

    def test_unterminated_rejected(self):
        with pytest.raises(DTDError):
            parse_content_model("(a, b")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DTDError):
            parse_content_model("(a) b")


class TestParseDtd:
    DTD_TEXT = """
    <!-- a tiny catalogue -->
    <!ELEMENT catalogue (item+, note?)>
    <!ELEMENT item (name, price)>
    <!ATTLIST item id CDATA #REQUIRED>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT note (#PCDATA | name)*>
    """

    def test_parses_elements(self):
        dtd = parse_dtd(self.DTD_TEXT)
        assert len(dtd) == 5
        assert dtd.root == "catalogue"

    def test_pcdata_flag(self):
        dtd = parse_dtd(self.DTD_TEXT)
        assert dtd.element("name").has_pcdata
        assert not dtd.element("item").has_pcdata

    def test_mixed_content_keeps_elements(self):
        dtd = parse_dtd(self.DTD_TEXT)
        assert dtd.element("note").child_names() == ("name",)

    def test_attlist_and_comments_ignored(self):
        dtd = parse_dtd(self.DTD_TEXT)
        assert "id" not in dtd

    def test_explicit_root(self):
        dtd = parse_dtd(self.DTD_TEXT, root="item")
        assert dtd.root == "item"

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("<!ELEMENT a (b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>")

    def test_undeclared_reference_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("<!ELEMENT a (ghost)>")

    def test_unknown_root_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("<!ELEMENT a EMPTY>", root="zzz")

    def test_no_declarations_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("just text")

    def test_empty_and_any(self):
        dtd = parse_dtd("<!ELEMENT a (b?, c?)><!ELEMENT b EMPTY><!ELEMENT c ANY>")
        assert dtd.element("b").content is None
        assert dtd.element("c").child_names() == ()

    def test_render_round_trip(self):
        dtd = parse_dtd(self.DTD_TEXT)
        again = parse_dtd(dtd.render())
        assert set(again.elements) == set(dtd.elements)
        assert again.element("item").child_names() == dtd.element(
            "item"
        ).child_names()


class TestDTDGraph:
    def test_child_graph(self):
        dtd = parse_dtd(TestParseDtd.DTD_TEXT)
        graph = dtd.child_graph()
        assert graph["catalogue"] == ("item", "note")
        assert graph["name"] == ()

    def test_reachability(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b)><!ELEMENT b EMPTY><!ELEMENT orphan EMPTY>"
        )
        assert dtd.reachable_elements() == {"a", "b"}

    def test_max_depth_dag(self):
        dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b (c)><!ELEMENT c EMPTY>")
        assert dtd.max_depth() == 3

    def test_max_depth_recursive(self):
        dtd = parse_dtd("<!ELEMENT a (a?, b)><!ELEMENT b EMPTY>")
        assert dtd.max_depth(limit=32) == 32


class TestBuiltinDtds:
    def test_nitf_element_count(self):
        assert len(nitf_dtd()) == NITF_ELEMENT_COUNT == 123

    def test_xcbl_element_count(self):
        assert len(xcbl_dtd()) == XCBL_ELEMENT_COUNT == 569

    def test_nitf_fully_reachable(self):
        dtd = nitf_dtd()
        assert dtd.reachable_elements() == frozenset(dtd.elements)

    def test_xcbl_fully_reachable(self):
        dtd = xcbl_dtd()
        assert dtd.reachable_elements() == frozenset(dtd.elements)

    def test_nitf_is_recursive(self):
        # NITF's enriched text nests (blocks inside quotes inside blocks).
        assert nitf_dtd().max_depth(limit=40) == 40

    def test_xcbl_depth_supports_ten_levels(self):
        assert xcbl_dtd().max_depth() >= 10

    def test_roots(self):
        assert nitf_dtd().root == "nitf"
        assert xcbl_dtd().root == "Order"

    def test_builtin_lookup(self):
        assert builtin_dtd("nitf") is nitf_dtd()
        assert builtin_dtd("xcbl") is xcbl_dtd()
        with pytest.raises(ValueError):
            builtin_dtd("tpc-h")

    def test_render_reparses(self):
        for dtd in (nitf_dtd(), xcbl_dtd()):
            again = parse_dtd(dtd.render(), root=dtd.root)
            assert len(again) == len(dtd)
