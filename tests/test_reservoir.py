"""Vitter reservoir sampling over the document stream."""

import random
from collections import Counter

import pytest

from repro.synopsis.reservoir import DocumentReservoir


class TestBasics:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            DocumentReservoir(0)

    def test_fills_up_first(self):
        reservoir = DocumentReservoir(3, random.Random(0))
        for doc in range(3):
            decision = reservoir.offer(doc)
            assert decision.admitted
            assert decision.evicted is None
        assert sorted(reservoir.members()) == [0, 1, 2]

    def test_never_exceeds_size(self):
        reservoir = DocumentReservoir(5, random.Random(1))
        for doc in range(100):
            reservoir.offer(doc)
        assert len(reservoir) == 5

    def test_eviction_reported_on_admission(self):
        reservoir = DocumentReservoir(2, random.Random(2))
        reservoir.offer(0)
        reservoir.offer(1)
        for doc in range(2, 100):
            decision = reservoir.offer(doc)
            if decision.admitted:
                assert decision.evicted is not None
                assert decision.evicted not in reservoir
                assert doc in reservoir
            else:
                assert decision.evicted is None

    def test_seen_counts_offers(self):
        reservoir = DocumentReservoir(2, random.Random(3))
        for doc in range(10):
            reservoir.offer(doc)
        assert reservoir.seen == 10

    def test_contains(self):
        reservoir = DocumentReservoir(2, random.Random(4))
        reservoir.offer(42)
        assert 42 in reservoir
        assert 7 not in reservoir


class TestUniformity:
    def test_admission_probability_is_s_over_k(self):
        """Across many runs, each stream position should be resident with
        probability s/N at the end — the defining reservoir property."""
        s, n, runs = 5, 40, 3_000
        counts = Counter()
        for run in range(runs):
            reservoir = DocumentReservoir(s, random.Random(run))
            for doc in range(n):
                reservoir.offer(doc)
            counts.update(reservoir.members())
        expected = runs * s / n
        for doc in range(n):
            assert abs(counts[doc] - expected) < expected * 0.30

    def test_members_are_distinct(self):
        reservoir = DocumentReservoir(10, random.Random(9))
        for doc in range(200):
            reservoir.offer(doc)
        members = reservoir.members()
        assert len(members) == len(set(members))
