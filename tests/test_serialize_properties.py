"""Property tests: serialisation round-trips arbitrary synopses, including
randomly pruned ones, preserving structure and every estimate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selectivity import SelectivityEstimator
from repro.synopsis.pruning import (
    delete_low_cardinality,
    fold_leaves,
    merge_same_label,
)
from repro.synopsis.serialize import synopsis_from_dict, synopsis_to_dict
from repro.synopsis.size import measure
from repro.synopsis.synopsis import DocumentSynopsis
from tests.strategies import tree_patterns
from tests.test_selectivity_properties import corpora


@st.composite
def built_synopses(draw):
    docs = draw(corpora())
    mode = draw(st.sampled_from(["counters", "sets", "hashes"]))
    capacity = draw(st.integers(1, 50))
    synopsis = DocumentSynopsis(mode=mode, capacity=capacity, seed=draw(st.integers(0, 99)))
    for doc in docs:
        synopsis.insert_document(doc)
    # Optionally prune, in a random order.
    operations = draw(
        st.lists(st.sampled_from(["fold", "delete", "merge"]), max_size=3)
    )
    for operation in operations:
        if operation == "fold":
            fold_leaves(synopsis, min_similarity=0.5)
        elif operation == "delete":
            delete_low_cardinality(synopsis, max_deletions=2)
        else:
            merge_same_label(synopsis, min_similarity=0.5)
    return synopsis


@settings(max_examples=60, deadline=None)
@given(built_synopses(), tree_patterns())
def test_round_trip_preserves_estimates(synopsis, pattern):
    restored = synopsis_from_dict(synopsis_to_dict(synopsis))
    assert measure(restored).total == measure(synopsis).total
    original = SelectivityEstimator(synopsis).selectivity(pattern)
    recovered = SelectivityEstimator(restored).selectivity(pattern)
    assert original == recovered


@settings(max_examples=60, deadline=None)
@given(built_synopses())
def test_round_trip_preserves_structure(synopsis):
    restored = synopsis_from_dict(synopsis_to_dict(synopsis))
    original_labels = sorted(n.label.render() for n in synopsis.iter_nodes())
    restored_labels = sorted(n.label.render() for n in restored.iter_nodes())
    assert original_labels == restored_labels
    assert restored.n_documents == synopsis.n_documents

    # The dict form must be stable under a second round trip.
    once = synopsis_to_dict(restored)
    twice = synopsis_to_dict(synopsis_from_dict(once))
    assert once == twice
