"""Unit tests for the merged pattern trie.

The property suites (``test_trie_properties``) pin the trie against the
per-pattern oracle on random workloads; here the structure itself is
exercised: prefix sharing, degree-sorted branch order, operation
accounting, and the incremental-maintenance invariants under churn.
"""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.routing.trie import PatternTrie, TrieMatch
from repro.xmltree.matcher import matches
from repro.xmltree.parser import parse_xml


def doc(markup: str):
    return parse_xml(markup, doc_id=0)


class TestBasics:
    def test_empty_trie_matches_nothing_for_free(self):
        trie = PatternTrie()
        result = trie.match(doc("<a><b/></a>"))
        assert result == TrieMatch(set(), set(), 0)

    def test_single_pattern_roundtrip(self):
        trie = PatternTrie()
        pattern = parse_xpath("/a/b")
        trie.add(pattern, "link-1")
        result = trie.match(doc("<a><b/></a>"))
        assert result.destinations == {"link-1"}
        assert result.patterns == {pattern}
        assert result.operations > 0
        assert trie.match(doc("<a><c/></a>")).destinations == set()

    def test_equal_patterns_share_one_entry(self):
        trie = PatternTrie()
        trie.add(parse_xpath("/a/b"), "link-1")
        nodes = trie.node_count
        trie.add(parse_xpath("/a/b"), "link-2")
        assert len(trie) == 1
        assert trie.node_count == nodes
        assert trie.destinations_of(parse_xpath("/a/b")) == {
            "link-1",
            "link-2",
        }

    def test_contains_and_len(self):
        trie = PatternTrie()
        assert parse_xpath("/a") not in trie
        trie.add(parse_xpath("/a"), "link-1")
        assert parse_xpath("/a") in trie
        assert "not a pattern" not in trie
        assert len(trie) == 1

    def test_clear_resets_everything(self):
        trie = PatternTrie()
        trie.add(parse_xpath("/a/b[c]"), "link-1")
        trie.add(parse_xpath("//d"), "link-2")
        trie.clear()
        assert len(trie) == 0
        assert trie.node_count == 0
        assert trie.interned_count == 0
        assert trie.match(doc("<a><b><c/></b></a>")).destinations == set()
        trie.check()


class TestAgainstOracle:
    PATTERNS = [
        "/a",
        "/*",
        "//a",
        "//*",
        "/a/b",
        "/a/*/c",
        "/a//c",
        "/a[b][c]",
        "/a[b[d]]/c",
        "/a[.//d]",
        "//b[c]",
        "//b//d",
        "/a[b][.//d]",
        "/*[b]/c",
        "//*[b][c]",
    ]
    DOCS = [
        "<a/>",
        "<a><b/></a>",
        "<a><b/><c/></a>",
        "<a><b><d/></b><c/></a>",
        "<a><x><c/></x></a>",
        "<a><x><b><c/><d/></b></x></a>",
        "<b><c/></b>",
        "<z><a><b/><c><d/></c></a></z>",
    ]

    def test_trie_agrees_with_matcher_on_tricky_patterns(self):
        trie = PatternTrie()
        patterns = [parse_xpath(text) for text in self.PATTERNS]
        for index, pattern in enumerate(patterns):
            trie.add(pattern, f"link-{index}")
        trie.check()
        for markup in self.DOCS:
            document = doc(markup)
            result = trie.match(document)
            expected = {
                pattern for pattern in patterns if matches(document, pattern)
            }
            assert result.patterns == expected, markup
            assert result.destinations == {
                f"link-{patterns.index(pattern)}" for pattern in expected
            }


class TestSharing:
    def test_common_prefix_shares_spine_nodes(self):
        trie = PatternTrie()
        trie.add(parse_xpath("/a/b/c"), "link-1")
        assert trie.node_count == 3
        trie.add(parse_xpath("/a/b/d"), "link-2")
        # Only the diverging leaf is new; /a/b is shared.
        assert trie.node_count == 4

    def test_equal_branch_subtrees_intern_to_one_node(self):
        trie = PatternTrie()
        trie.add(parse_xpath("/a[x[y]]/b"), "link-1")
        interned = trie.interned_count
        trie.add(parse_xpath("/c[x[y]]/d"), "link-2")
        # The [x[y]] constraint is hash-consed, not duplicated.
        assert trie.interned_count == interned

    def test_dead_shared_prefix_prunes_for_one_operation(self):
        trie = PatternTrie()
        for index in range(50):
            trie.add(parse_xpath(f"/z/t{index}"), f"link-{index}")
        result = trie.match(doc("<a><b/></a>"))
        # All 50 spines hang under the shared /z root step: one root
        # label test kills the entire subtrie.
        assert result.destinations == set()
        assert result.operations == 1


class TestDegreeSortedOrder:
    def test_exact_steps_sort_before_wildcard_before_descendant(self):
        trie = PatternTrie()
        trie.add(parse_xpath("//a"), "link-descendant")
        trie.add(parse_xpath("/*"), "link-wild")
        trie.add(parse_xpath("/a"), "link-exact")
        trie.add(parse_xpath("//*"), "link-wildest")
        order = [
            (node.axis, node.label) for node in trie._root.child_order
        ]
        assert order == [
            ("self", "a"),
            ("self", "*"),
            ("anywhere", "a"),
            ("anywhere", "*"),
        ]

    def test_order_is_insertion_independent(self):
        texts = ["/a", "/*", "//a", "/a/b", "/a//b", "/a[x]/b"]
        forward, backward = PatternTrie(), PatternTrie()
        for index, text in enumerate(texts):
            forward.add(parse_xpath(text), index)
        for index, text in reversed(list(enumerate(texts))):
            backward.add(parse_xpath(text), index)
        document = doc("<a><b/><x/></a>")
        first = forward.match(document)
        second = backward.match(document)
        assert first.destinations == second.destinations
        assert first.operations == second.operations

    def test_exact_branch_becomes_spine_not_branch(self):
        # In /a[*]/b the exact child b is degree-first, so the spine is
        # a → b and the wildcard rides along as a branch constraint.
        trie = PatternTrie()
        trie.add(parse_xpath("/a[*]/b"), "link-1")
        labels = []
        node = trie._root
        while node.child_order:
            node = node.child_order[0]
            labels.append(node.label)
        assert labels == ["a", "b"]


class TestOperationAccounting:
    def test_shared_structure_costs_once(self):
        single = PatternTrie()
        single.add(parse_xpath("/a/b/c"), "link-0")
        document = doc("<a><b><c/></b></a>")
        base = single.match(document).operations

        shared = PatternTrie()
        for index in range(40):
            shared.add(parse_xpath("/a/b/c"), f"link-{index}")
        result = shared.match(document)
        assert len(result.destinations) == 40
        # 40 destinations on one canonical pattern: identical trie work.
        assert result.operations == base

    def test_operations_deterministic_per_document(self):
        trie = PatternTrie()
        for index, text in enumerate(["/a/b", "/a[c]/b", "//b", "/a/*"]):
            trie.add(parse_xpath(text), index)
        document = doc("<a><b/><c/></a>")
        assert (
            trie.match(document).operations
            == trie.match(document).operations
        )


class TestIncrementalMaintenance:
    def test_discard_returns_trie_to_pristine(self):
        trie = PatternTrie()
        patterns = [
            parse_xpath(text)
            for text in ["/a/b[c]/d", "/a/b", "//x[y]", "/a[.//d]/b"]
        ]
        for index, pattern in enumerate(patterns):
            trie.add(pattern, f"link-{index}")
        for index, pattern in enumerate(patterns):
            trie.discard(pattern, f"link-{index}")
            trie.check()
        assert len(trie) == 0
        assert trie.node_count == 0
        assert trie.interned_count == 0

    def test_discard_one_destination_keeps_shared_entry(self):
        trie = PatternTrie()
        trie.add(parse_xpath("/a"), "link-1")
        trie.add(parse_xpath("/a"), "link-2")
        trie.discard(parse_xpath("/a"), "link-1")
        assert trie.destinations_of(parse_xpath("/a")) == {"link-2"}
        assert trie.match(doc("<a/>")).destinations == {"link-2"}
        trie.check()

    def test_discard_keeps_shared_prefix_of_survivors(self):
        trie = PatternTrie()
        trie.add(parse_xpath("/a/b/c"), "link-1")
        trie.add(parse_xpath("/a/b/d"), "link-2")
        trie.discard(parse_xpath("/a/b/c"), "link-1")
        trie.check()
        assert trie.node_count == 3
        assert trie.match(doc("<a><b><d/></b></a>")).destinations == {
            "link-2"
        }

    def test_rename_destination_rekeys_in_place(self):
        trie = PatternTrie()
        trie.add(parse_xpath("/a"), "link-1")
        trie.add(parse_xpath("/a/b"), "link-1")
        trie.add(parse_xpath("/a"), "link-2")
        nodes = trie.node_count
        trie.rename_destination(
            "link-1", "link-9", [parse_xpath("/a"), parse_xpath("/a/b")]
        )
        assert trie.node_count == nodes
        assert trie.destinations_of(parse_xpath("/a")) == {
            "link-9",
            "link-2",
        }
        assert trie.match(doc("<a><b/></a>")).destinations == {
            "link-9",
            "link-2",
        }
        trie.check()

    def test_discard_unknown_pattern_raises(self):
        trie = PatternTrie()
        with pytest.raises(KeyError):
            trie.discard(parse_xpath("/a"), "link-1")

    def test_checked_churn_interleaving(self):
        trie = PatternTrie()
        texts = ["/a/b", "/a/b/c", "//d", "/a[x]/b", "/a/b", "/*[y]"]
        for step, text in enumerate(texts):
            trie.add(parse_xpath(text), f"link-{step % 3}")
            trie.check()
        trie.discard(parse_xpath("/a/b"), "link-0")
        trie.check()
        # /a/b is still active: step 4 registered it for link-1 too.
        assert parse_xpath("/a/b") in trie
