"""Synopsis pruning (Section 3.3): folding, deletion, merging — including
the Figure 3 transformations of the Figure 2 synopsis."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.core.selectivity import SelectivityEstimator
from repro.synopsis.node import LabelTree
from repro.synopsis.pruning import (
    delete_low_cardinality,
    fold_leaves,
    merge_same_label,
    node_pair_similarity,
)
from repro.synopsis.size import measure
from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.tree import XMLTree


def find_node(synopsis, *path):
    node = synopsis.root
    for tag in path:
        node = node.child_by_tag(tag)
        assert node is not None, f"missing synopsis path {path}"
    return node


class TestLabelTree:
    def test_plain_render(self):
        assert LabelTree("a").render() == "a"

    def test_nested_render(self):
        nested = LabelTree("c", (LabelTree("f"), LabelTree("o", (LabelTree("n"),))))
        assert nested.render() == "c[f][o[n]]"

    def test_atoms(self):
        nested = LabelTree("c", (LabelTree("f"), LabelTree("o", (LabelTree("n"),))))
        assert nested.atoms() == 4

    def test_equality_unordered(self):
        a = LabelTree("x", (LabelTree("p"), LabelTree("q")))
        b = LabelTree("x", (LabelTree("q"), LabelTree("p")))
        assert a == b
        assert hash(a) == hash(b)

    def test_with_folded(self):
        folded = LabelTree("a").with_folded(LabelTree("b"))
        assert folded.render() == "a[b]"

    def test_immutable(self):
        label = LabelTree("a")
        with pytest.raises(AttributeError):
            label.tag = "b"


class TestNodePairSimilarity:
    def test_identical_sets(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        # a/c/f and a/c/f/o both have matching set {3,4}.
        f = find_node(synopsis, "a", "c", "f")
        o = f.child_by_tag("o")
        assert node_pair_similarity(synopsis, f, o) == 1.0

    def test_disjoint_sets(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        b = find_node(synopsis, "a", "b")
        d = find_node(synopsis, "a", "d")
        assert node_pair_similarity(synopsis, b, d) == 0.0

    def test_counter_similarity_is_count_ratio(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="counters")
        b = find_node(synopsis, "a", "b")  # count 3
        c = find_node(synopsis, "a", "c")  # count 2
        assert node_pair_similarity(synopsis, b, c) == pytest.approx(2 / 3)


class TestFoldLeaves:
    def test_lossless_fold_of_identical_sets(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        folds = fold_leaves(synopsis, lossless_only=True)
        assert folds > 0
        # a/c/f/o had the same matching set {3,4} as a/c/f: o must be gone,
        # folded into f's label.
        f = find_node(synopsis, "a", "c", "f")
        assert f.child_by_tag("o") is None
        assert "o" in [c.tag for c in f.label.children]

    def test_fold_unions_summaries(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        synopsis.insert_document(XMLTree.from_nested(("a", [("b", ["c"])]), doc_id=0))
        synopsis.insert_document(XMLTree.from_nested(("a", [("b", ["c"])]), doc_id=1))
        folds = fold_leaves(synopsis, min_similarity=0.0)
        assert folds > 0
        # After folding everything into 'a', its stored summary holds both docs.
        a = find_node(synopsis, "a")
        assert set(synopsis.full_view(a).ids) == {0, 1}

    def test_fold_reduces_size(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="hashes")
        before = measure(synopsis).total
        assert fold_leaves(synopsis, min_similarity=0.5) > 0
        assert measure(synopsis).total < before

    def test_threshold_respected(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        # With an impossible threshold nothing above 1.0 folds.
        before = synopsis.n_nodes
        fold_leaves(synopsis, min_similarity=1.01)
        assert synopsis.n_nodes == before

    def test_estimates_unchanged_by_lossless_folds(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        reference = figure2_synopsis_factory(mode="sets")
        fold_leaves(synopsis, lossless_only=True)
        est = SelectivityEstimator(synopsis)
        ref = SelectivityEstimator(reference)
        for expression in ("/a/b", "/a/c/f/o", "/a[c/f][c/f/o]", "//f/o", "/a/d/e/m"):
            pattern = parse_xpath(expression)
            assert est.selectivity(pattern) == pytest.approx(
                ref.selectivity(pattern)
            ), expression


class TestDeleteLowCardinality:
    def test_deletes_smallest_first(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        single_doc_leaves = {
            node.node_id
            for node in synopsis.iter_nodes()
            if node.is_leaf and len(synopsis.full_view(node).ids) == 1
        }
        deleted = delete_low_cardinality(synopsis, max_deletions=2)
        assert deleted == 2
        remaining = {node.node_id for node in synopsis.iter_nodes()}
        # Both deletions came from the 1-document leaves.
        assert len(single_doc_leaves - remaining) == 2

    def test_max_cardinality_bound(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        before = synopsis.n_nodes
        deleted = delete_low_cardinality(
            synopsis, max_deletions=100, max_cardinality=0.5
        )
        assert deleted == 0
        assert synopsis.n_nodes == before

    def test_cascading_passes_prune_subtrees(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        for _ in range(30):
            if delete_low_cardinality(synopsis, max_deletions=5) == 0:
                break
        # Everything but the root is eventually deletable.
        assert synopsis.n_nodes == 1

    def test_counters_mode(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="counters")
        assert delete_low_cardinality(synopsis, max_deletions=3) == 3


class TestMergeSameLabel:
    def test_merges_same_label_leaves(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        before = synopsis.n_nodes
        merged = merge_same_label(synopsis, min_similarity=0.0)
        assert merged > 0
        assert synopsis.n_nodes < before

    def test_merged_node_has_multiple_parents(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        # Two distinct parents (b, c) each with an identical x-leaf.
        synopsis.insert_document(
            XMLTree.from_nested(("a", [("b", ["x"]), ("c", ["x"])]), doc_id=0)
        )
        merged = merge_same_label(synopsis, min_similarity=1.0)
        assert merged == 1
        b = find_node(synopsis, "a", "b")
        c = find_node(synopsis, "a", "c")
        x_from_b = b.child_by_tag("x")
        x_from_c = c.child_by_tag("x")
        assert x_from_b is x_from_c
        assert {parent.tag for parent in x_from_b.parents} == {"b", "c"}

    def test_merge_uses_intersection(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        synopsis.insert_document(
            XMLTree.from_nested(("a", [("b", ["x"]), ("c", ["x"])]), doc_id=0)
        )
        synopsis.insert_document(
            XMLTree.from_nested(("a", [("b", ["x"])]), doc_id=1)
        )
        merged = merge_same_label(synopsis, min_similarity=0.0)
        assert merged == 1
        x = find_node(synopsis, "a", "b").child_by_tag("x")
        # S(x_b)={0,1}, S(x_c)={0}: merged stored set is the intersection.
        assert set(x.summary) == {0}

    def test_threshold_blocks_dissimilar_merges(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        synopsis.insert_document(XMLTree.from_nested(("a", [("b", ["x"])]), doc_id=0))
        synopsis.insert_document(XMLTree.from_nested(("a", [("c", ["x"])]), doc_id=1))
        # The two x-leaves have disjoint matching sets {0} and {1}.
        assert merge_same_label(synopsis, min_similarity=0.5) == 0

    def test_inner_nodes_merge_after_children(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        synopsis.insert_document(
            XMLTree.from_nested(("a", [("b", ["x"]), ("c", ["x"])]), doc_id=0)
        )
        first = merge_same_label(synopsis, min_similarity=0.0)
        assert first == 1  # the x leaves
        # b and c now share the single x child but have different labels,
        # so they must NOT merge.
        assert merge_same_label(synopsis, min_similarity=0.0) == 0

    def test_same_label_inner_nodes_with_shared_children_merge(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        # Two sibling-context b's (under x and y) with identical leaves.
        synopsis.insert_document(
            XMLTree.from_nested(
                ("a", [("x", [("b", ["k"])]), ("y", [("b", ["k"])])]), doc_id=0
            )
        )
        merges_round1 = merge_same_label(synopsis, min_similarity=0.0)
        assert merges_round1 == 1  # the two k leaves
        merges_round2 = merge_same_label(synopsis, min_similarity=0.0)
        assert merges_round2 == 1  # now the two b's share the k child
        x = find_node(synopsis, "a", "x")
        y = find_node(synopsis, "a", "y")
        assert x.child_by_tag("b") is y.child_by_tag("b")

    def test_estimation_still_works_on_dag(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        merge_same_label(synopsis, min_similarity=0.0)
        merge_same_label(synopsis, min_similarity=0.0)
        estimator = SelectivityEstimator(synopsis)
        value = estimator.selectivity(parse_xpath("/a/b"))
        assert 0.0 <= value <= 1.0


class TestFoldedLabelEstimation:
    """SEL must expand folded labels as virtual children."""

    def test_selectivity_through_folded_leaf(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        for doc_id in range(4):
            synopsis.insert_document(
                XMLTree.from_nested(("a", [("b", ["c"])]), doc_id=doc_id)
            )
        folds = fold_leaves(synopsis, lossless_only=True)
        assert folds > 0
        estimator = SelectivityEstimator(synopsis)
        assert estimator.selectivity(parse_xpath("/a/b/c")) == pytest.approx(1.0)
        assert estimator.selectivity(parse_xpath("/a/b")) == pytest.approx(1.0)
        assert estimator.selectivity(parse_xpath("//c")) == pytest.approx(1.0)

    def test_multi_level_nested_fold(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        for doc_id in range(3):
            synopsis.insert_document(
                XMLTree.from_nested(("a", [("b", [("c", ["d"])])]), doc_id=doc_id)
            )
        # Fold twice: d into c, then c[d] into b, etc.
        fold_leaves(synopsis, lossless_only=True)
        fold_leaves(synopsis, lossless_only=True)
        estimator = SelectivityEstimator(synopsis)
        assert estimator.selectivity(parse_xpath("/a/b/c/d")) == pytest.approx(1.0)
        assert estimator.selectivity(parse_xpath("//c/d")) == pytest.approx(1.0)

    def test_folded_branch_pattern(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        for doc_id in range(3):
            synopsis.insert_document(
                XMLTree.from_nested(("a", [("b", ["c", "d"])]), doc_id=doc_id)
            )
        fold_leaves(synopsis, lossless_only=True)
        estimator = SelectivityEstimator(synopsis)
        assert estimator.selectivity(parse_xpath("/a/b[c][d]")) == pytest.approx(
            1.0
        )
