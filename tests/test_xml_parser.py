"""XML text parsing into XMLTree."""

import pytest

from repro.xmltree.parser import XMLParseError, parse_xml, tree_to_xml
from repro.xmltree.tree import XMLTree


class TestParseXml:
    def test_simple_document(self):
        tree = parse_xml("<a><b/><c/></a>")
        assert tree.to_nested() == ("a", ["b", "c"])

    def test_nested_elements(self):
        tree = parse_xml("<a><b><c/></b></a>")
        assert tree.to_nested() == ("a", [("b", ["c"])])

    def test_text_becomes_leaf(self):
        tree = parse_xml("<last>Mozart</last>")
        assert tree.to_nested() == ("last", ["Mozart"])

    def test_text_excluded_when_disabled(self):
        tree = parse_xml("<last>Mozart</last>", include_text=False)
        assert tree.to_nested() == "last"

    def test_whitespace_text_ignored(self):
        tree = parse_xml("<a>\n  <b/>\n</a>")
        assert tree.to_nested() == ("a", ["b"])

    def test_text_stripped(self):
        tree = parse_xml("<a>  hi  </a>")
        assert tree.to_nested() == ("a", ["hi"])

    def test_attributes_ignored(self):
        tree = parse_xml('<a x="1"><b y="2"/></a>')
        assert tree.to_nested() == ("a", ["b"])

    def test_namespace_stripped(self):
        tree = parse_xml('<n:a xmlns:n="urn:x"><n:b/></n:a>')
        assert tree.to_nested() == ("a", ["b"])

    def test_doc_id_assigned(self):
        assert parse_xml("<a/>", doc_id=9).doc_id == 9

    def test_malformed_raises(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a><b></a>")

    def test_empty_raises(self):
        with pytest.raises(XMLParseError):
            parse_xml("")

    def test_figure1_document(self, figure1_document):
        text = (
            "<media>"
            "<book><author><first>William</first><last>Shakespeare</last>"
            "</author><title>Hamlet</title></book>"
            "<CD><composer><first>Wolfgang</first><last>Mozart</last>"
            "</composer><title>Requiem</title>"
            "<interpreter><ensemble>Berliner Phil.</ensemble></interpreter></CD>"
            "</media>"
        )
        assert parse_xml(text).to_nested() == figure1_document.to_nested()


class TestTreeToXml:
    def test_empty_elements(self):
        tree = XMLTree.from_nested(("a", ["b", "c"]))
        assert tree_to_xml(tree) == "<a><b/><c/></a>"

    def test_round_trip_without_text(self):
        text = "<a><b><c/></b><d/></a>"
        tree = parse_xml(text, include_text=False)
        assert tree_to_xml(tree) == text

    def test_single_node(self):
        assert tree_to_xml(XMLTree.from_nested("a")) == "<a/>"
