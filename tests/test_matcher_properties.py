"""Property tests: the memoised matcher against an independent reference.

The reference implementation computes, bottom-up over the pattern, the full
*satisfaction sets* ``Sat(u) = {t : (T, t) ⊨ Subtree(u)}`` — a structurally
different algorithm from the matcher's memoised top-down recursion, so
agreement between the two is meaningful evidence for both.
"""

from hypothesis import given, settings

from repro.core.labels import DESCENDANT, WILDCARD
from repro.core.pattern import PatternNode, TreePattern
from repro.xmltree.matcher import PatternMatcher, matches
from repro.xmltree.skeleton import skeleton
from repro.xmltree.tree import XMLTree
from tests.strategies import tree_patterns, xml_trees


def reference_matches(tree: XMLTree, pattern: TreePattern) -> bool:
    """Bottom-up set-based implementation of the Section 2 semantics."""
    all_nodes = frozenset(range(len(tree)))
    parents = tree.parents
    labels = tree.labels

    def ancestors_or_self(nodes: frozenset[int]) -> frozenset[int]:
        result = set(nodes)
        frontier = list(nodes)
        while frontier:
            node = frontier.pop()
            parent = parents[node]
            if parent != -1 and parent not in result:
                result.add(parent)
                frontier.append(parent)
        return frozenset(result)

    def sat(u: PatternNode) -> frozenset[int]:
        child_sets = [sat(child) for child in u.children]

        def satisfies_children(t: int) -> bool:
            return all(t in s for s in child_sets)

        if u.label == DESCENDANT:
            good = frozenset(t for t in all_nodes if satisfies_children(t))
            return ancestors_or_self(good)
        if u.label == WILDCARD:
            good = (t for t in all_nodes if satisfies_children(t))
        else:
            good = (
                t
                for t in all_nodes
                if labels[t] == u.label and satisfies_children(t)
            )
        return frozenset(
            parents[t] for t in good if parents[t] != -1
        )

    def root_ok(v: PatternNode) -> bool:
        child_sets = [sat(child) for child in v.children]
        if v.label == DESCENDANT:
            target = v.children[0]
            target_sets = [sat(c) for c in target.children]
            for t in all_nodes:
                label_ok = (
                    target.label == WILDCARD or labels[t] == target.label
                )
                if label_ok and all(t in s for s in target_sets):
                    return True
            return False
        if v.label != WILDCARD and labels[tree.root] != v.label:
            return False
        return all(tree.root in s for s in child_sets)

    return all(root_ok(v) for v in pattern.root_children)


@settings(max_examples=300, deadline=None)
@given(xml_trees(), tree_patterns())
def test_matcher_agrees_with_reference(tree, pattern):
    assert matches(tree, pattern) == reference_matches(tree, pattern)


@settings(max_examples=200, deadline=None)
@given(xml_trees(), tree_patterns())
def test_skeletonisation_only_adds_matches(tree, pattern):
    """Coalescing same-tag children can only bring constraint branches
    together, never separate them: T ⊨ p implies skeleton(T) ⊨ p."""
    if matches(tree, pattern):
        assert matches(skeleton(tree), pattern)


@settings(max_examples=200, deadline=None)
@given(xml_trees())
def test_trivial_root_pattern_always_matches(tree):
    pattern = TreePattern((PatternNode(WILDCARD),))
    assert matches(tree, pattern)


@settings(max_examples=200, deadline=None)
@given(xml_trees())
def test_root_tag_pattern(tree):
    pattern = TreePattern((PatternNode(tree.labels[0]),))
    assert matches(tree, pattern)


@settings(max_examples=200, deadline=None)
@given(xml_trees())
def test_descendant_tag_pattern_iff_tag_present(tree):
    for tag in ("a", "e"):
        pattern = TreePattern(
            (PatternNode(DESCENDANT, (PatternNode(tag),)),)
        )
        assert matches(tree, pattern) == (tag in tree.tag_set)


def matches_without_prefilter(tree: XMLTree, pattern: TreePattern) -> bool:
    """The exact ``PatternMatcher.matches`` recursion, with the
    ``required_tags`` rejection short-circuit disabled."""
    matcher = PatternMatcher(pattern)
    memo: dict[int, bool] = {}
    root_memo: dict[int, bool] = {}
    return all(
        matcher._root_sat(tree, tree.root, u, memo, root_memo)
        for u in matcher.compiled.root_children
    )


@settings(max_examples=300, deadline=None)
@given(xml_trees(), tree_patterns())
def test_required_tags_prefilter_never_changes_verdict(tree, pattern):
    """The prefilter is a pure accelerator: a pattern naming a tag the
    document lacks can never match, so rejecting on missing tags must
    agree with the full recursion on every (pattern, document) pair."""
    assert PatternMatcher(pattern).matches(tree) == (
        matches_without_prefilter(tree, pattern)
    )
