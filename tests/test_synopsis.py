"""Document synopsis construction and maintenance: the Figure 2 example in
all three matching-set representations."""

import pytest

from repro.core.labels import ROOT_LABEL
from repro.synopsis.synopsis import MODES, DocumentSynopsis
from repro.xmltree.tree import XMLTree


def find_node(synopsis, *path):
    """Walk plain-label children from the root along *path*."""
    node = synopsis.root
    for tag in path:
        node = node.child_by_tag(tag)
        assert node is not None, f"missing synopsis path {path}"
    return node


class TestConstruction:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            DocumentSynopsis(mode="bitmaps")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DocumentSynopsis(capacity=0)

    def test_root_label(self):
        synopsis = DocumentSynopsis()
        assert synopsis.root.tag == ROOT_LABEL

    @pytest.mark.parametrize("mode", MODES)
    def test_empty_synopsis(self, mode):
        synopsis = DocumentSynopsis(mode=mode)
        assert synopsis.n_documents == 0
        assert synopsis.n_nodes == 1


class TestFigure2MatchingSets:
    """The exact matching sets printed in Figure 2 (Sets mode, no sampling)."""

    @pytest.fixture()
    def synopsis(self, figure2_synopsis_factory):
        return figure2_synopsis_factory(mode="sets", capacity=100)

    def full_ids(self, synopsis, *path):
        return set(synopsis.full_view(find_node(synopsis, *path)).ids)

    def test_root_set(self, synopsis):
        assert self.full_ids(synopsis) == {1, 2, 3, 4, 5, 6}

    def test_a(self, synopsis):
        assert self.full_ids(synopsis, "a") == {1, 2, 3, 4, 5, 6}

    def test_a_b(self, synopsis):
        assert self.full_ids(synopsis, "a", "b") == {1, 2, 3}

    def test_a_c(self, synopsis):
        assert self.full_ids(synopsis, "a", "c") == {3, 4}

    def test_a_d(self, synopsis):
        assert self.full_ids(synopsis, "a", "d") == {4, 5, 6}

    def test_a_b_e(self, synopsis):
        assert self.full_ids(synopsis, "a", "b", "e") == {1, 2, 3}

    def test_a_b_f(self, synopsis):
        assert self.full_ids(synopsis, "a", "b", "f") == {1, 2, 3}

    def test_a_b_g(self, synopsis):
        assert self.full_ids(synopsis, "a", "b", "g") == {1, 2}

    def test_a_b_e_k(self, synopsis):
        assert self.full_ids(synopsis, "a", "b", "e", "k") == {1, 2, 3}

    def test_a_b_e_m(self, synopsis):
        assert self.full_ids(synopsis, "a", "b", "e", "m") == {1, 2}

    def test_a_b_f_n(self, synopsis):
        assert self.full_ids(synopsis, "a", "b", "f", "n") == {2, 3}

    def test_a_b_g_n(self, synopsis):
        assert self.full_ids(synopsis, "a", "b", "g", "n") == {1, 2}

    def test_a_c_f(self, synopsis):
        assert self.full_ids(synopsis, "a", "c", "f") == {3, 4}

    def test_a_c_f_o(self, synopsis):
        assert self.full_ids(synopsis, "a", "c", "f", "o") == {3, 4}

    def test_a_c_e(self, synopsis):
        assert self.full_ids(synopsis, "a", "c", "e") == {3, 4}

    def test_a_c_h(self, synopsis):
        assert self.full_ids(synopsis, "a", "c", "h") == {3}

    def test_a_d_e(self, synopsis):
        assert self.full_ids(synopsis, "a", "d", "e") == {4, 5, 6}

    def test_a_d_e_m(self, synopsis):
        assert self.full_ids(synopsis, "a", "d", "e", "m") == {4, 5, 6}

    def test_a_d_q(self, synopsis):
        assert self.full_ids(synopsis, "a", "d", "q") == {4}

    def test_a_d_p(self, synopsis):
        assert self.full_ids(synopsis, "a", "d", "p") == {5}


class TestCountersMode:
    @pytest.fixture()
    def synopsis(self, figure2_synopsis_factory):
        return figure2_synopsis_factory(mode="counters")

    def test_root_counts_documents(self, synopsis):
        assert synopsis.root.summary.count == 6

    def test_path_frequencies(self, synopsis):
        assert find_node(synopsis, "a", "b").summary.count == 3
        assert find_node(synopsis, "a", "c").summary.count == 2
        assert find_node(synopsis, "a", "d").summary.count == 3
        assert find_node(synopsis, "a", "b", "e", "m").summary.count == 2

    def test_counter_counts_document_once(self):
        # A document with two distinct paths through the same prefix must
        # count once at the shared prefix node.
        synopsis = DocumentSynopsis(mode="counters")
        synopsis.insert_document(
            XMLTree.from_nested(("a", [("b", ["c", "d"])]), doc_id=0)
        )
        assert find_node(synopsis, "a", "b").summary.count == 1

    def test_represented_documents(self, synopsis):
        assert synopsis.represented_documents == 6.0

    def test_full_count(self, synopsis):
        assert synopsis.full_count(find_node(synopsis, "a", "b")) == 3.0

    def test_full_view_raises(self, synopsis):
        with pytest.raises(TypeError):
            synopsis.full_view(synopsis.root)


class TestHashesMode:
    def test_small_corpus_is_exact(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="hashes", capacity=100)
        view = synopsis.full_view(find_node(synopsis, "a", "b"))
        assert set(view.ids) == {1, 2, 3}
        assert view.level == 0

    def test_capacity_bounds_stored_entries(self, figure2_documents):
        synopsis = DocumentSynopsis(mode="hashes", capacity=1)
        for document in figure2_documents:
            synopsis.insert_document(document)
        for node in synopsis.iter_nodes():
            assert len(node.summary) <= 1

    def test_counter_mode_has_no_views(self):
        synopsis = DocumentSynopsis(mode="counters")
        with pytest.raises(TypeError):
            synopsis.stored_view(synopsis.root)


class TestSetsModeSampling:
    def test_reservoir_limits_documents(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=5, seed=3)
        for doc_id in range(50):
            synopsis.insert_document(
                XMLTree.from_nested(("a", [("b", [f"t{doc_id}"])]), doc_id=doc_id)
            )
        resident = set(synopsis.full_view(synopsis.root).ids)
        assert len(resident) == 5
        assert synopsis.represented_documents == 5.0
        # Evicted documents must be gone from every node.
        for node in synopsis.iter_nodes():
            if node is not synopsis.root:
                assert set(node.summary) <= resident

    def test_n_documents_counts_all_offers(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=2, seed=1)
        for doc_id in range(10):
            synopsis.insert_document(XMLTree.from_nested("a", doc_id=doc_id))
        assert synopsis.n_documents == 10


class TestStructuralSharing:
    def test_common_paths_shared(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory()
        # 6 documents share the 'a' root: one 'a' node only.
        assert len(synopsis.root.children) == 1

    def test_node_count_matches_distinct_paths(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory()
        # Distinct label paths over all six documents: the root, 'a', the
        # three branches b/c/d, and 21 nodes below them as drawn in Figure 2.
        assert synopsis.n_nodes == 26

    def test_insert_assigns_sequential_ids(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        first = synopsis.insert_document(XMLTree.from_nested("a"))
        second = synopsis.insert_document(XMLTree.from_nested("a"))
        assert (first, second) == (0, 1)

    def test_full_view_cache_invalidated_on_insert(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        synopsis.insert_document(XMLTree.from_nested(("a", ["b"]), doc_id=0))
        before = set(synopsis.full_view(synopsis.root).ids)
        synopsis.insert_document(XMLTree.from_nested(("a", ["c"]), doc_id=1))
        after = set(synopsis.full_view(synopsis.root).ids)
        assert before == {0}
        assert after == {0, 1}
