"""Stream compaction measurement and the DBLP-like extreme case."""

import pytest

from repro.dtd.builtin import dblp_dtd
from repro.experiments.compaction import CompactionResult, measure_compaction
from repro.generators.docgen import DocumentGenerator, GeneratorConfig
from repro.xmltree.tree import XMLTree


class TestCompactionResult:
    def test_ratio(self):
        result = CompactionResult(documents=2, total_tag_nodes=200, synopsis_nodes=10)
        assert result.ratio == pytest.approx(0.05)
        assert result.percent == pytest.approx(5.0)

    def test_empty_stream(self):
        result = measure_compaction([])
        assert result.ratio == 0.0
        assert result.documents == 0

    def test_str(self):
        result = CompactionResult(documents=1, total_tag_nodes=100, synopsis_nodes=5)
        assert "compaction" in str(result)


class TestMeasureCompaction:
    def test_single_document(self):
        doc = XMLTree.from_nested(("a", ["b", "b", "b"]), doc_id=0)
        result = measure_compaction([doc])
        assert result.total_tag_nodes == 4
        # Skeleton: a with one b child -> 2 synopsis nodes.
        assert result.synopsis_nodes == 2
        assert result.ratio == pytest.approx(0.5)

    def test_identical_documents_share_everything(self):
        docs = [
            XMLTree.from_nested(("a", [("b", ["c"])]), doc_id=i) for i in range(50)
        ]
        result = measure_compaction(docs)
        assert result.synopsis_nodes == 3
        assert result.ratio == pytest.approx(3 / 150)

    def test_figure2_compaction(self, figure2_documents):
        result = measure_compaction(figure2_documents)
        assert result.synopsis_nodes == 25  # 26 including the root
        assert result.documents == 6


class TestDblpAnecdote:
    def test_dblp_dtd_shape(self):
        dtd = dblp_dtd()
        assert dtd.root == "dblp"
        assert len(dtd) == 31  # dblp + 8 record types + 22 fields

    def test_extreme_compaction(self):
        """A large DBLP-like stream collapses to a tiny synopsis, orders of
        magnitude below the document size (paper: 0.0017%)."""
        config = GeneratorConfig(
            max_depth=3, max_nodes=400, p_repeat=0.7, max_repeats=8
        )
        generator = DocumentGenerator(dblp_dtd(), seed=5, config=config)
        docs = list(generator.stream(200))
        result = measure_compaction(docs)
        # The synopsis cannot exceed the full path vocabulary:
        # dblp + 8 record types + 8*22 fields.
        assert result.synopsis_nodes <= 1 + 8 + 8 * 22
        assert result.ratio < 0.01  # < 1% — extreme factorisation
