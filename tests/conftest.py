"""Shared fixtures: the paper's worked examples and small reusable corpora.

Also registers the hypothesis settings profiles the CI property-test job
selects with ``HYPOTHESIS_PROFILE``: the ``thorough`` profile raises the
example budget for bare ``@given`` tests, and the property suites scale
their pinned budgets through
:func:`tests.strategies.property_max_examples`.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.xmltree.tree import XMLTree

settings.register_profile("thorough", max_examples=300, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def figure1_document() -> XMLTree:
    """The XML tree T of Figure 1 (media catalogue with a book and a CD)."""
    return XMLTree.from_nested(
        (
            "media",
            [
                (
                    "book",
                    [
                        (
                            "author",
                            [
                                ("first", ["William"]),
                                ("last", ["Shakespeare"]),
                            ],
                        ),
                        ("title", ["Hamlet"]),
                    ],
                ),
                (
                    "CD",
                    [
                        (
                            "composer",
                            [("first", ["Wolfgang"]), ("last", ["Mozart"])],
                        ),
                        ("title", ["Requiem"]),
                        ("interpreter", [("ensemble", ["Berliner Phil."])]),
                    ],
                ),
            ],
        )
    )


def _figure2_specs() -> list[tuple]:
    """The six documents T1..T6 of Figure 2 (label structure)."""
    return [
        # T1: a(b(e(k), e(m), g(n)), b(e(k), f, g(n)))
        (
            "a",
            [
                ("b", [("e", ["k"]), ("e", ["m"]), ("g", ["n"])]),
                ("b", [("e", ["k"]), "f", ("g", ["n"])]),
            ],
        ),
        # T2: a(b(e(k, m), f(n), g(n)))
        ("a", [("b", [("e", ["k", "m"]), ("f", ["n"]), ("g", ["n"])])]),
        # T3: a(b(e(k), f(n)), c(f(o), e(n), f, h(n)))
        (
            "a",
            [
                ("b", [("e", ["k"]), ("f", ["n"])]),
                ("c", [("f", ["o"]), ("e", ["n"]), "f", ("h", ["n"])]),
            ],
        ),
        # T4: a(c(e(k), f(o), f(m)), d(e(k), q(m), e(m)))
        (
            "a",
            [
                ("c", [("e", ["k"]), ("f", ["o"]), ("f", ["m"])]),
                ("d", [("e", ["k"]), ("q", ["m"]), ("e", ["m"])]),
            ],
        ),
        # T5: a(d(e(m), e, p))
        ("a", [("d", [("e", ["m"]), "e", "p"])]),
        # T6: a(d(e(m)))
        ("a", [("d", [("e", ["m"])])]),
    ]


@pytest.fixture(scope="session")
def figure2_documents() -> list[XMLTree]:
    """T1..T6 with doc ids 1..6 as in the paper's matching sets."""
    return [
        XMLTree.from_nested(spec, doc_id=index)
        for index, spec in enumerate(_figure2_specs(), start=1)
    ]


@pytest.fixture()
def figure2_synopsis_factory(figure2_documents):
    """Build a fresh Figure 2 synopsis in any mode."""
    from repro.synopsis.synopsis import DocumentSynopsis

    def build(mode: str = "sets", capacity: int = 100, seed: int = 0):
        synopsis = DocumentSynopsis(mode=mode, capacity=capacity, seed=seed)
        for document in figure2_documents:
            synopsis.insert_document(document)
        return synopsis

    return build
