"""Selectivity estimation edge cases across representations and pruned
synopsis shapes."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.core.selectivity import SelectivityEstimator
from repro.synopsis.pruning import fold_leaves, merge_same_label
from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.tree import XMLTree


def build(mode, specs, capacity=100):
    synopsis = DocumentSynopsis(mode=mode, capacity=capacity, seed=3)
    for doc_id, spec in enumerate(specs):
        synopsis.insert_document(XMLTree.from_nested(spec, doc_id=doc_id))
    return synopsis


class TestOperatorOnlyPatterns:
    """Patterns carrying no tag at all (pure * and //)."""

    SPECS = [("a", ["b"]), ("c", [("d", ["e"])])]

    @pytest.mark.parametrize("mode", ["sets", "hashes"])
    def test_root_wildcard(self, mode):
        estimator = SelectivityEstimator(build(mode, self.SPECS))
        assert estimator.selectivity(parse_xpath("/*")) == pytest.approx(1.0)

    @pytest.mark.parametrize("mode", ["sets", "hashes"])
    def test_double_wildcard(self, mode):
        estimator = SelectivityEstimator(build(mode, self.SPECS))
        # Both documents have a depth-2 node.
        assert estimator.selectivity(parse_xpath("/*/*")) == pytest.approx(1.0)

    @pytest.mark.parametrize("mode", ["counters", "sets", "hashes"])
    def test_triple_wildcard(self, mode):
        estimator = SelectivityEstimator(build(mode, self.SPECS))
        # Only the second document is three levels deep.
        assert estimator.selectivity(parse_xpath("/*/*/*")) == pytest.approx(0.5)

    @pytest.mark.parametrize("mode", ["sets", "hashes"])
    def test_descendant_wildcard(self, mode):
        estimator = SelectivityEstimator(build(mode, self.SPECS))
        assert estimator.selectivity(parse_xpath("//*")) == pytest.approx(1.0)

    def test_counters_max_substitution_undercounts_across_siblings(self):
        """Counter mode replaces union by max, so a wildcard spanning two
        distinct root tags sees only the larger count — the documented
        conservative approximation of Section 4."""
        estimator = SelectivityEstimator(build("counters", self.SPECS))
        assert estimator.selectivity(parse_xpath("/*")) == pytest.approx(0.5)
        assert estimator.selectivity(parse_xpath("//*")) == pytest.approx(0.5)


class TestDeepDescendants:
    SPECS = [
        ("a", [("b", [("c", [("d", ["e"])])])]),
        ("a", [("x", ["e"])]),
    ]

    @pytest.mark.parametrize("mode", ["sets", "hashes"])
    def test_stacked_descendants(self, mode):
        estimator = SelectivityEstimator(build(mode, self.SPECS))
        assert estimator.selectivity(parse_xpath("//b//d//e")) == pytest.approx(
            0.5
        )

    @pytest.mark.parametrize("mode", ["sets", "hashes"])
    def test_descendant_to_shared_leaf(self, mode):
        estimator = SelectivityEstimator(build(mode, self.SPECS))
        assert estimator.selectivity(parse_xpath("//e")) == pytest.approx(1.0)

    def test_counter_mode_descendants_bounded(self):
        estimator = SelectivityEstimator(build("counters", self.SPECS))
        value = estimator.selectivity(parse_xpath("//e"))
        assert 0.0 < value <= 1.0


class TestPrunedShapes:
    def test_counters_with_folded_labels(self):
        synopsis = build("counters", [("a", [("b", ["c"])])] * 1)
        folds = fold_leaves(synopsis, min_similarity=0.0)
        assert folds > 0
        estimator = SelectivityEstimator(synopsis)
        assert estimator.selectivity(parse_xpath("/a/b/c")) == pytest.approx(1.0)

    def test_merged_then_folded(self):
        synopsis = build(
            "sets",
            [("a", [("b", ["x"]), ("c", ["x"])])] * 3,
        )
        merge_same_label(synopsis, min_similarity=0.9)
        fold_leaves(synopsis, min_similarity=0.9)
        estimator = SelectivityEstimator(synopsis)
        for expression in ("/a/b/x", "/a/c/x", "/a[b/x][c/x]", "//x"):
            assert estimator.selectivity(
                parse_xpath(expression)
            ) == pytest.approx(1.0), expression

    def test_pattern_deeper_than_folded_synopsis(self):
        synopsis = build("sets", [("a", [("b", ["c"])])] * 2)
        fold_leaves(synopsis, min_similarity=0.0)
        fold_leaves(synopsis, min_similarity=0.0)
        estimator = SelectivityEstimator(synopsis)
        # Deeper than anything stored: must be 0, not an error.
        assert estimator.selectivity(parse_xpath("/a/b/c/d/e")) == 0.0

    def test_wildcard_through_folded_label(self):
        synopsis = build("sets", [("a", [("b", ["c"])])] * 2)
        fold_leaves(synopsis, min_similarity=0.0)
        estimator = SelectivityEstimator(synopsis)
        assert estimator.selectivity(parse_xpath("/a/*/c")) == pytest.approx(1.0)

    def test_descendant_through_folded_label(self):
        synopsis = build("sets", [("a", [("b", [("c", ["d"])])])] * 2)
        for _ in range(3):
            fold_leaves(synopsis, min_similarity=0.0)
        estimator = SelectivityEstimator(synopsis)
        assert estimator.selectivity(parse_xpath("//c/d")) == pytest.approx(1.0)
        assert estimator.selectivity(parse_xpath("/a//d")) == pytest.approx(1.0)


class TestDocumentIdentityQuirks:
    def test_duplicate_doc_id_counts_once_in_sets(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10, seed=1)
        tree = XMLTree.from_nested(("a", ["b"]), doc_id=7)
        synopsis.insert_document(tree)
        synopsis.insert_document(tree)  # same id offered twice
        estimator = SelectivityEstimator(synopsis)
        # Two offers, one distinct id: P <= 1 must still hold.
        assert estimator.selectivity(parse_xpath("/a/b")) <= 1.0

    def test_interleaved_estimation_and_insertion(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=100, seed=1)
        estimator = SelectivityEstimator(synopsis)
        pattern = parse_xpath("/a/b")
        synopsis.insert_document(XMLTree.from_nested(("a", ["b"]), doc_id=0))
        estimator.clear_cache()
        assert estimator.selectivity(pattern) == pytest.approx(1.0)
        synopsis.insert_document(XMLTree.from_nested(("a", ["c"]), doc_id=1))
        estimator.clear_cache()
        assert estimator.selectivity(pattern) == pytest.approx(0.5)
