"""DocumentCorpus: indexing, exact matching, statistics."""

import pytest
from hypothesis import given, settings

from repro.core.pattern_parser import parse_xpath
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.matcher import matches
from repro.xmltree.tree import XMLTree
from tests.strategies import tree_patterns
from tests.test_selectivity_properties import corpora


class TestConstruction:
    def test_requires_doc_ids(self):
        with pytest.raises(ValueError):
            DocumentCorpus([XMLTree.from_nested("a")])  # doc_id == -1

    def test_rejects_duplicate_ids(self):
        docs = [
            XMLTree.from_nested("a", doc_id=1),
            XMLTree.from_nested("b", doc_id=1),
        ]
        with pytest.raises(ValueError):
            DocumentCorpus(docs)

    def test_len(self, figure2_documents):
        assert len(DocumentCorpus(figure2_documents)) == 6


class TestCandidatePruning:
    @pytest.fixture()
    def corpus(self, figure2_documents):
        return DocumentCorpus(figure2_documents)

    def test_candidates_superset_of_matches(self, corpus):
        pattern = parse_xpath("/a/b/e/k")
        assert corpus.match_set(pattern) <= corpus.candidate_ids(pattern)

    def test_unknown_tag_empty(self, corpus):
        assert corpus.candidate_ids(parse_xpath("//zzz")) == frozenset()

    def test_tagless_pattern_returns_all(self, corpus):
        assert corpus.candidate_ids(parse_xpath("/*")) == corpus.all_ids

    def test_candidates_intersect_postings(self, corpus):
        # h occurs only in doc 3, q only in 4: no candidate has both.
        assert corpus.candidate_ids(parse_xpath("/.[.//h][.//q]")) == frozenset()


class TestMatching:
    @pytest.fixture()
    def corpus(self, figure2_documents):
        return DocumentCorpus(figure2_documents)

    def test_match_set(self, corpus):
        assert corpus.match_set(parse_xpath("/a/b")) == {1, 2, 3}

    def test_match_count(self, corpus):
        assert corpus.match_count(parse_xpath("//q")) == 1

    def test_match_set_cached(self, corpus):
        pattern = parse_xpath("/a/b")
        first = corpus.match_set(pattern)
        assert corpus.match_set(pattern) is first

    def test_selectivity(self, corpus):
        assert corpus.selectivity(parse_xpath("/a/b")) == pytest.approx(0.5)

    def test_joint_selectivity(self, corpus):
        joint = corpus.joint_selectivity(parse_xpath("//o"), parse_xpath("//q"))
        assert joint == pytest.approx(1 / 6)

    def test_branching_is_instance_level(self, corpus):
        # Exact matching distinguishes instance-level branching that the
        # synopsis cannot: /a/b[e/m][f/n] needs one b with both.
        assert corpus.match_set(parse_xpath("/a/b[e/m][f/n]")) == {2}

    @settings(max_examples=60, deadline=None)
    @given(corpora(), tree_patterns())
    def test_match_set_equals_naive_scan(self, docs, pattern):
        corpus = DocumentCorpus(docs)
        expected = {d.doc_id for d in docs if matches(d, pattern)}
        assert corpus.match_set(pattern) == expected


class TestStatistics:
    @pytest.fixture()
    def corpus(self, figure2_documents):
        return DocumentCorpus(figure2_documents)

    def test_tag_vocabulary(self, corpus):
        assert "a" in corpus.tag_vocabulary()
        assert "q" in corpus.tag_vocabulary()

    def test_average_edges(self, corpus):
        expected = sum(d.n_edges for d in corpus.documents) / 6
        assert corpus.average_edges() == pytest.approx(expected)

    def test_average_depth(self, corpus):
        assert 1.0 < corpus.average_depth() <= 4.0

    def test_selectivity_profile(self, corpus):
        patterns = [parse_xpath("/a"), parse_xpath("//q")]
        avg, low, high = corpus.selectivity_profile(patterns)
        assert avg == pytest.approx((1.0 + 1 / 6) / 2)
        assert low == pytest.approx(1 / 6)
        assert high == pytest.approx(1.0)

    def test_selectivity_profile_empty(self, corpus):
        assert corpus.selectivity_profile([]) == (0.0, 0.0, 0.0)
