"""Semantic communities and the content-based routing simulation."""

from typing import Optional

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.core.similarity import SimilarityEstimator, SimilarityMatrix
from repro.routing.broker import RoutingSimulator
from repro.routing.community import (
    Community,
    agglomerative_clustering,
    leader_clustering,
)
from repro.xmltree.corpus import DocumentCorpus


@pytest.fixture()
def corpus(figure2_documents):
    return DocumentCorpus(figure2_documents)


@pytest.fixture()
def subscriptions():
    # Three "b-interested", two "d-interested", one universal subscriber.
    return [
        parse_xpath("/a/b"),
        parse_xpath("/a/b/e"),
        parse_xpath("/a/b/e/k"),
        parse_xpath("/a/d"),
        parse_xpath("/a/d/e/m"),
        parse_xpath("/a"),
    ]


@pytest.fixture()
def similarity(corpus):
    estimator = SimilarityEstimator(corpus)

    def fn(p, q):
        return estimator.similarity(p, q, metric="M3")

    return fn


class TestCommunity:
    def test_leader_always_member(self):
        community = Community(leader=3, members=[1, 2])
        assert 3 in community
        assert len(community) == 3


class TestLeaderClustering:
    def test_invalid_threshold(self, subscriptions, similarity):
        with pytest.raises(ValueError):
            leader_clustering(subscriptions, similarity, threshold=1.5)

    def test_zero_threshold_single_community(self, subscriptions, similarity):
        communities = leader_clustering(subscriptions, similarity, threshold=0.0)
        assert len(communities) == 1
        assert len(communities[0]) == len(subscriptions)

    def test_exact_threshold_groups_equivalents(self, subscriptions, similarity):
        # /a/b, /a/b/e and /a/b/e/k all match exactly {1,2,3}: M3 = 1.
        communities = leader_clustering(subscriptions, similarity, threshold=1.0)
        by_member = {}
        for index, community in enumerate(communities):
            for member in community.members:
                by_member[member] = index
        assert by_member[0] == by_member[1] == by_member[2]
        assert by_member[3] == by_member[4]
        assert by_member[5] not in (by_member[0], by_member[3])

    def test_partition_covers_everything(self, subscriptions, similarity):
        communities = leader_clustering(subscriptions, similarity, threshold=0.5)
        members = sorted(m for c in communities for m in c.members)
        assert members == list(range(len(subscriptions)))

    def test_empty_input(self, similarity):
        assert leader_clustering([], similarity, threshold=0.5) == []


class TestAgglomerativeClustering:
    def test_target_community_count(self, subscriptions, similarity):
        communities = agglomerative_clustering(
            subscriptions, similarity, n_communities=2
        )
        assert len(communities) == 2

    def test_merges_most_similar_first(self, subscriptions, similarity):
        communities = agglomerative_clustering(
            subscriptions, similarity, n_communities=3
        )
        groups = [sorted(c.members) for c in communities]
        # The b-family {0,1,2} must end up together before unrelated merges.
        assert any(set([0, 1, 2]) <= set(g) for g in groups)

    def test_min_similarity_stops_merging(self, subscriptions, similarity):
        communities = agglomerative_clustering(
            subscriptions, similarity, n_communities=1, min_similarity=0.99
        )
        # Only the perfect-similarity families can merge.
        assert len(communities) == 3

    def test_invalid_count(self, subscriptions, similarity):
        with pytest.raises(ValueError):
            agglomerative_clustering(subscriptions, similarity, n_communities=0)

    def test_empty(self, similarity):
        assert agglomerative_clustering([], similarity, 3) == []


#: A 30-pattern workload over the Figure 2 corpus mixing plain paths,
#: descendant steps, wildcards and matches-nothing patterns — wide enough
#: to exercise many merges and plenty of linkage ties.
WORKLOAD_30 = [
    "/a", "/a/b", "/a/b/e", "/a/b/e/k", "/a/b/e/m", "/a/b/f",
    "/a/b/g", "/a/b/g/n", "/a/c", "/a/c/e", "/a/c/f", "/a/c/f/o",
    "/a/d", "/a/d/e", "/a/d/e/k", "/a/d/e/m", "/a/d/q", "/a//e",
    "/a//f", "/a//k", "/a//m", "/a//n", "/a/*/e", "/a/*/f",
    "/a/*/e/k", "/a//e/m", "/a/b//n", "/a//g", "/a/d/p", "/a/c/h",
]


def _communities_as_tuples(communities):
    return [(c.leader, tuple(c.members)) for c in communities]


def _reference_agglomerative(patterns, similarity, n_communities,
                             min_similarity=0.0):
    """The seed's O(n³) implementation, kept verbatim as the oracle for the
    incremental linkage maintenance."""
    n = len(patterns)
    if n == 0:
        return []
    sims = [[0.0] * n for _ in range(n)]
    for i in range(n):
        sims[i][i] = 1.0
        for j in range(i + 1, n):
            value = similarity(patterns[i], patterns[j])
            sims[i][j] = value
            sims[j][i] = value
    clusters = [[i] for i in range(n)]

    def average_linkage(a, b):
        total = sum(sims[i][j] for i in a for j in b)
        return total / (len(a) * len(b))

    while len(clusters) > n_communities:
        best_pair: Optional[tuple[int, int]] = None
        best_score = -1.0
        for a in range(len(clusters)):
            for b in range(a + 1, len(clusters)):
                score = average_linkage(clusters[a], clusters[b])
                if score > best_score:
                    best_score = score
                    best_pair = (a, b)
        if best_pair is None or best_score < min_similarity:
            break
        a, b = best_pair
        clusters[a].extend(clusters[b])
        del clusters[b]

    communities = []
    for members in clusters:
        leader = max(
            members,
            key=lambda i, members=members: sum(sims[i][j] for j in members),
        )
        communities.append(Community(leader=leader, members=list(members)))
    return communities


class TestClusteringDeterminism:
    """Regression pins: identical communities across runs and across the
    direct-callable / SimilarityMatrix-backed code paths."""

    @pytest.fixture()
    def workload(self):
        return [parse_xpath(x) for x in WORKLOAD_30]

    def test_leader_clustering_deterministic_across_runs(
        self, corpus, workload
    ):
        runs = [
            _communities_as_tuples(
                leader_clustering(
                    workload,
                    SimilarityEstimator(corpus).similarity,
                    threshold=0.5,
                )
            )
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_agglomerative_deterministic_across_runs(self, corpus, workload):
        def similarity(p, q):
            return SimilarityEstimator(corpus).similarity(p, q, metric="M3")

        runs = [
            _communities_as_tuples(
                agglomerative_clustering(workload, similarity, n_communities=5)
            )
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_leader_clustering_matrix_matches_direct(self, corpus, workload):
        def direct(p, q):
            return SimilarityEstimator(corpus).similarity(p, q, metric="M3")

        matrix = SimilarityMatrix(corpus, workload, metric="M3")
        for threshold in (0.3, 0.5, 0.8, 1.0):
            assert _communities_as_tuples(
                leader_clustering(workload, matrix, threshold)
            ) == _communities_as_tuples(
                leader_clustering(workload, direct, threshold)
            )

    def test_agglomerative_matrix_matches_direct(self, corpus, workload):
        def direct(p, q):
            return SimilarityEstimator(corpus).similarity(p, q, metric="M3")

        matrix = SimilarityMatrix(corpus, workload, metric="M3")
        for n_communities in (1, 4, 10):
            assert _communities_as_tuples(
                agglomerative_clustering(workload, matrix, n_communities)
            ) == _communities_as_tuples(
                agglomerative_clustering(workload, direct, n_communities)
            )


class TestIncrementalLinkage:
    """The incremental pair-sum maintenance must reproduce the seed's
    rescan-everything implementation exactly."""

    @pytest.fixture()
    def workload(self):
        return [parse_xpath(x) for x in WORKLOAD_30]

    @pytest.mark.parametrize("n_communities", [1, 2, 5, 12, 29])
    def test_identical_output_on_30_pattern_workload(
        self, corpus, workload, n_communities
    ):
        def similarity(p, q):
            return SimilarityEstimator(corpus).similarity(p, q, metric="M3")

        assert _communities_as_tuples(
            agglomerative_clustering(workload, similarity, n_communities)
        ) == _communities_as_tuples(
            _reference_agglomerative(workload, similarity, n_communities)
        )

    @pytest.mark.parametrize("min_similarity", [0.2, 0.5, 0.99])
    def test_identical_early_stopping(self, corpus, workload, min_similarity):
        def similarity(p, q):
            return SimilarityEstimator(corpus).similarity(p, q, metric="M2")

        assert _communities_as_tuples(
            agglomerative_clustering(
                workload, similarity, 1, min_similarity=min_similarity
            )
        ) == _communities_as_tuples(
            _reference_agglomerative(
                workload, similarity, 1, min_similarity=min_similarity
            )
        )


class TestRoutingSimulator:
    def test_per_subscription_is_perfect(self, corpus, subscriptions):
        simulator = RoutingSimulator(corpus, subscriptions)
        stats = simulator.per_subscription()
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        assert stats.match_operations == len(corpus) * len(subscriptions)

    def test_flooding_full_recall_low_precision(self, corpus, subscriptions):
        simulator = RoutingSimulator(corpus, subscriptions)
        stats = simulator.flooding()
        assert stats.recall == 1.0
        assert stats.precision < 1.0
        assert stats.match_operations == 0

    def test_singleton_communities_are_perfect(self, corpus, subscriptions):
        simulator = RoutingSimulator(corpus, subscriptions)
        singletons = [Community(leader=i) for i in range(len(subscriptions))]
        stats = simulator.community(singletons)
        assert stats.precision == 1.0
        assert stats.recall == 1.0

    def test_coherent_communities_good_quality(
        self, corpus, subscriptions, similarity
    ):
        simulator = RoutingSimulator(corpus, subscriptions)
        communities = leader_clustering(subscriptions, similarity, threshold=1.0)
        stats = simulator.community(communities)
        # Equivalence-class communities deliver exactly the right documents.
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        assert stats.match_operations < len(corpus) * len(subscriptions)

    def test_incoherent_single_community(self, corpus, subscriptions):
        simulator = RoutingSimulator(corpus, subscriptions)
        one = [Community(leader=5, members=list(range(len(subscriptions))))]
        stats = simulator.community(one)
        # Leader /a matches everything: full recall, flooding-level precision.
        assert stats.recall == 1.0
        assert stats.precision < 1.0
        assert stats.match_operations == len(corpus)

    def test_community_must_cover_all(self, corpus, subscriptions):
        simulator = RoutingSimulator(corpus, subscriptions)
        with pytest.raises(ValueError):
            simulator.community([Community(leader=0)])

    def test_stats_properties_on_empty(self):
        from repro.routing.broker import RoutingStats

        stats = RoutingStats(
            strategy="x", documents=0, subscribers=0, deliveries=0,
            true_deliveries=0, false_positives=0, false_negatives=0,
            match_operations=0,
        )
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        assert stats.matches_per_document == 0.0
