"""Semantic communities and the content-based routing simulation."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.core.similarity import SimilarityEstimator
from repro.routing.broker import RoutingSimulator
from repro.routing.community import (
    Community,
    agglomerative_clustering,
    leader_clustering,
)
from repro.xmltree.corpus import DocumentCorpus


@pytest.fixture()
def corpus(figure2_documents):
    return DocumentCorpus(figure2_documents)


@pytest.fixture()
def subscriptions():
    # Three "b-interested", two "d-interested", one universal subscriber.
    return [
        parse_xpath("/a/b"),
        parse_xpath("/a/b/e"),
        parse_xpath("/a/b/e/k"),
        parse_xpath("/a/d"),
        parse_xpath("/a/d/e/m"),
        parse_xpath("/a"),
    ]


@pytest.fixture()
def similarity(corpus):
    estimator = SimilarityEstimator(corpus)

    def fn(p, q):
        return estimator.similarity(p, q, metric="M3")

    return fn


class TestCommunity:
    def test_leader_always_member(self):
        community = Community(leader=3, members=[1, 2])
        assert 3 in community
        assert len(community) == 3


class TestLeaderClustering:
    def test_invalid_threshold(self, subscriptions, similarity):
        with pytest.raises(ValueError):
            leader_clustering(subscriptions, similarity, threshold=1.5)

    def test_zero_threshold_single_community(self, subscriptions, similarity):
        communities = leader_clustering(subscriptions, similarity, threshold=0.0)
        assert len(communities) == 1
        assert len(communities[0]) == len(subscriptions)

    def test_exact_threshold_groups_equivalents(self, subscriptions, similarity):
        # /a/b, /a/b/e and /a/b/e/k all match exactly {1,2,3}: M3 = 1.
        communities = leader_clustering(subscriptions, similarity, threshold=1.0)
        by_member = {}
        for index, community in enumerate(communities):
            for member in community.members:
                by_member[member] = index
        assert by_member[0] == by_member[1] == by_member[2]
        assert by_member[3] == by_member[4]
        assert by_member[5] not in (by_member[0], by_member[3])

    def test_partition_covers_everything(self, subscriptions, similarity):
        communities = leader_clustering(subscriptions, similarity, threshold=0.5)
        members = sorted(m for c in communities for m in c.members)
        assert members == list(range(len(subscriptions)))

    def test_empty_input(self, similarity):
        assert leader_clustering([], similarity, threshold=0.5) == []


class TestAgglomerativeClustering:
    def test_target_community_count(self, subscriptions, similarity):
        communities = agglomerative_clustering(
            subscriptions, similarity, n_communities=2
        )
        assert len(communities) == 2

    def test_merges_most_similar_first(self, subscriptions, similarity):
        communities = agglomerative_clustering(
            subscriptions, similarity, n_communities=3
        )
        groups = [sorted(c.members) for c in communities]
        # The b-family {0,1,2} must end up together before unrelated merges.
        assert any(set([0, 1, 2]) <= set(g) for g in groups)

    def test_min_similarity_stops_merging(self, subscriptions, similarity):
        communities = agglomerative_clustering(
            subscriptions, similarity, n_communities=1, min_similarity=0.99
        )
        # Only the perfect-similarity families can merge.
        assert len(communities) == 3

    def test_invalid_count(self, subscriptions, similarity):
        with pytest.raises(ValueError):
            agglomerative_clustering(subscriptions, similarity, n_communities=0)

    def test_empty(self, similarity):
        assert agglomerative_clustering([], similarity, 3) == []


class TestRoutingSimulator:
    def test_per_subscription_is_perfect(self, corpus, subscriptions):
        simulator = RoutingSimulator(corpus, subscriptions)
        stats = simulator.per_subscription()
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        assert stats.match_operations == len(corpus) * len(subscriptions)

    def test_flooding_full_recall_low_precision(self, corpus, subscriptions):
        simulator = RoutingSimulator(corpus, subscriptions)
        stats = simulator.flooding()
        assert stats.recall == 1.0
        assert stats.precision < 1.0
        assert stats.match_operations == 0

    def test_singleton_communities_are_perfect(self, corpus, subscriptions):
        simulator = RoutingSimulator(corpus, subscriptions)
        singletons = [Community(leader=i) for i in range(len(subscriptions))]
        stats = simulator.community(singletons)
        assert stats.precision == 1.0
        assert stats.recall == 1.0

    def test_coherent_communities_good_quality(
        self, corpus, subscriptions, similarity
    ):
        simulator = RoutingSimulator(corpus, subscriptions)
        communities = leader_clustering(subscriptions, similarity, threshold=1.0)
        stats = simulator.community(communities)
        # Equivalence-class communities deliver exactly the right documents.
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        assert stats.match_operations < len(corpus) * len(subscriptions)

    def test_incoherent_single_community(self, corpus, subscriptions):
        simulator = RoutingSimulator(corpus, subscriptions)
        one = [Community(leader=5, members=list(range(len(subscriptions))))]
        stats = simulator.community(one)
        # Leader /a matches everything: full recall, flooding-level precision.
        assert stats.recall == 1.0
        assert stats.precision < 1.0
        assert stats.match_operations == len(corpus)

    def test_community_must_cover_all(self, corpus, subscriptions):
        simulator = RoutingSimulator(corpus, subscriptions)
        with pytest.raises(ValueError):
            simulator.community([Community(leader=0)])

    def test_stats_properties_on_empty(self):
        from repro.routing.broker import RoutingStats

        stats = RoutingStats(
            strategy="x", documents=0, subscribers=0, deliveries=0,
            true_deliveries=0, false_positives=0, false_negatives=0,
            match_operations=0,
        )
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        assert stats.matches_per_document == 0.0
