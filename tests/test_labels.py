"""Label algebra: the partial order of Section 2 and label validation."""

import pytest

from repro.core.labels import (
    DESCENDANT,
    ROOT_LABEL,
    WILDCARD,
    doc_label_matches,
    is_descendant,
    is_root_label,
    is_tag,
    is_valid_tag,
    is_wildcard,
    label_below,
    validate_label,
)


class TestPredicates:
    def test_plain_tag_is_tag(self):
        assert is_tag("media")

    def test_wildcard_is_not_tag(self):
        assert not is_tag(WILDCARD)

    def test_descendant_is_not_tag(self):
        assert not is_tag(DESCENDANT)

    def test_root_label_is_not_tag(self):
        assert not is_tag(ROOT_LABEL)

    def test_is_wildcard(self):
        assert is_wildcard("*")
        assert not is_wildcard("a")

    def test_is_descendant(self):
        assert is_descendant("//")
        assert not is_descendant("/")

    def test_is_root_label(self):
        assert is_root_label("/.")
        assert not is_root_label("root")


class TestTagValidity:
    @pytest.mark.parametrize(
        "tag", ["a", "CD", "body.content", "doc-id", "OrderHeader", "name_1"]
    )
    def test_valid_tags(self, tag):
        assert is_valid_tag(tag)

    @pytest.mark.parametrize(
        "tag", ["", "*", "//", "/.", "a/b", "a[b]", "a b", 'a"b', "a*"]
    )
    def test_invalid_tags(self, tag):
        assert not is_valid_tag(tag)

    def test_validate_label_accepts_operators(self):
        for label in (WILDCARD, DESCENDANT, ROOT_LABEL):
            validate_label(label)  # must not raise

    def test_validate_label_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_label("a/b")


class TestPartialOrder:
    """The order is  a ≼ * ≼ //  with distinct tags incomparable."""

    def test_tag_below_itself(self):
        assert label_below("a", "a")

    def test_distinct_tags_incomparable(self):
        assert not label_below("a", "b")
        assert not label_below("b", "a")

    def test_tag_below_wildcard(self):
        assert label_below("a", WILDCARD)

    def test_tag_below_descendant(self):
        assert label_below("a", DESCENDANT)

    def test_wildcard_below_descendant(self):
        assert label_below(WILDCARD, DESCENDANT)

    def test_wildcard_not_below_tag(self):
        assert not label_below(WILDCARD, "a")

    def test_descendant_not_below_wildcard(self):
        assert not label_below(DESCENDANT, WILDCARD)

    def test_descendant_not_below_tag(self):
        assert not label_below(DESCENDANT, "a")

    def test_reflexive_on_operators(self):
        assert label_below(WILDCARD, WILDCARD)
        assert label_below(DESCENDANT, DESCENDANT)
        assert label_below(ROOT_LABEL, ROOT_LABEL)

    def test_root_label_only_below_itself(self):
        assert not label_below(ROOT_LABEL, WILDCARD)
        assert not label_below(ROOT_LABEL, DESCENDANT)
        assert not label_below(ROOT_LABEL, "a")

    def test_transitivity_samples(self):
        # a ≼ * and * ≼ //  imply a ≼ //
        assert label_below("a", WILDCARD)
        assert label_below(WILDCARD, DESCENDANT)
        assert label_below("a", DESCENDANT)


class TestDocLabelMatches:
    def test_tag_requires_equality(self):
        assert doc_label_matches("a", "a")
        assert not doc_label_matches("a", "b")

    def test_wildcard_matches_any_tag(self):
        assert doc_label_matches("whatever", WILDCARD)

    def test_descendant_matches_any_tag(self):
        assert doc_label_matches("whatever", DESCENDANT)
