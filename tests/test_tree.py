"""Array-based XML tree model."""

import pytest
from hypothesis import given

from repro.xmltree.tree import XMLTree, XMLTreeBuilder
from tests.strategies import xml_trees


class TestBuilder:
    def test_build_simple(self):
        builder = XMLTreeBuilder()
        root = builder.add("a")
        child = builder.add("b", root)
        tree = builder.build(doc_id=7)
        assert tree.labels == ["a", "b"]
        assert tree.parents == [-1, 0]
        assert tree.children[root] == [child]
        assert tree.doc_id == 7

    def test_root_must_be_first(self):
        builder = XMLTreeBuilder()
        builder.add("a")
        with pytest.raises(ValueError):
            builder.add("b")  # second parentless node

    def test_parent_must_exist(self):
        builder = XMLTreeBuilder()
        builder.add("a")
        with pytest.raises(ValueError):
            builder.add("b", parent=5)

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            XMLTreeBuilder().build()


class TestFromNested:
    def test_plain_string_is_leaf_root(self):
        tree = XMLTree.from_nested("a")
        assert tree.labels == ["a"]

    def test_nested_structure(self):
        tree = XMLTree.from_nested(("a", ["b", ("c", ["d"])]))
        assert tree.labels == ["a", "b", "c", "d"]
        assert tree.parents == [-1, 0, 0, 2]

    def test_round_trip_with_to_nested(self):
        spec = ("a", ["b", ("c", ["d", "e"])])
        assert XMLTree.from_nested(spec).to_nested() == spec


class TestStructure:
    @pytest.fixture()
    def tree(self):
        return XMLTree.from_nested(("a", [("b", ["c", "d"]), "e"]))

    def test_len(self, tree):
        assert len(tree) == 5

    def test_n_edges(self, tree):
        assert tree.n_edges == 4

    def test_root(self, tree):
        assert tree.root == 0
        assert tree.label(0) == "a"

    def test_children_and_parent(self, tree):
        b = tree.child_indices(0)[0]
        assert tree.label(b) == "b"
        assert tree.parent(b) == 0

    def test_is_leaf(self, tree):
        assert not tree.is_leaf(0)
        assert tree.is_leaf(len(tree) - 1)

    def test_tag_set(self, tree):
        assert tree.tag_set == {"a", "b", "c", "d", "e"}

    def test_preorder(self, tree):
        labels = [tree.label(n) for n in tree.iter_preorder()]
        assert labels == ["a", "b", "c", "d", "e"]

    def test_depth(self, tree):
        assert tree.depth() == 3

    def test_node_depths(self, tree):
        assert tree.node_depths()[0] == 1
        assert max(tree.node_depths()) == tree.depth()

    def test_path_labels(self, tree):
        c = [n for n in tree.iter_preorder() if tree.label(n) == "c"][0]
        assert tree.path_labels(c) == ("a", "b", "c")

    def test_leaves(self, tree):
        leaf_labels = sorted(tree.label(n) for n in tree.leaves())
        assert leaf_labels == ["c", "d", "e"]

    def test_invalid_parallel_arrays(self):
        with pytest.raises(ValueError):
            XMLTree(["a"], [-1, 0], [[]])

    def test_node0_must_be_root(self):
        with pytest.raises(ValueError):
            XMLTree(["a", "b"], [1, -1], [[], []])


class TestProperties:
    @given(xml_trees())
    def test_parent_child_consistency(self, tree):
        for node in range(1, len(tree)):
            assert node in tree.children[tree.parents[node]]

    @given(xml_trees())
    def test_preorder_visits_every_node_once(self, tree):
        visited = list(tree.iter_preorder())
        assert sorted(visited) == list(range(len(tree)))

    @given(xml_trees())
    def test_edges_count(self, tree):
        assert sum(len(kids) for kids in tree.children) == tree.n_edges

    @given(xml_trees())
    def test_depth_bounds(self, tree):
        assert 1 <= tree.depth() <= len(tree)

    @given(xml_trees())
    def test_approx_bytes_positive(self, tree):
        assert tree.approx_bytes() > 0
