"""Property tests for SEL (Algorithm 1).

With unbounded explicit sets ("sets" mode, capacity >= corpus), the synopsis
is lossless at path granularity, so ``SEL`` must return *exactly* the
documents whose **skeleton tree** matches the pattern — skeletonisation is
the only approximation left.  The exact matcher on skeleton trees is an
independent implementation, making this a strong cross-validation of
Algorithm 1's recursion (branch intersections, ``//`` zero/deep splits,
wildcard handling).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selectivity import SelectivityEstimator
from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.matcher import PatternMatcher, matches
from repro.xmltree.skeleton import skeleton
from tests.strategies import tree_patterns, xml_trees


@st.composite
def corpora(draw, max_docs: int = 6):
    n = draw(st.integers(min_value=1, max_value=max_docs))
    docs = []
    for doc_id in range(n):
        tree = draw(xml_trees())
        docs.append(
            type(tree)(tree.labels, tree.parents, tree.children, doc_id=doc_id)
        )
    return docs


def build_synopsis(docs, mode="sets", capacity=1000, seed=0):
    synopsis = DocumentSynopsis(mode=mode, capacity=capacity, seed=seed)
    for doc in docs:
        synopsis.insert_document(doc)
    return synopsis


@settings(max_examples=200, deadline=None)
@given(corpora(), tree_patterns())
def test_sel_equals_skeleton_matching(docs, pattern):
    """SEL over unbounded sets == exact matching on skeleton trees."""
    synopsis = build_synopsis(docs)
    estimator = SelectivityEstimator(synopsis)
    result = set(estimator.matching_view(pattern).ids)
    matcher = PatternMatcher(pattern)
    expected = {doc.doc_id for doc in docs if matcher.matches(skeleton(doc))}
    assert result == expected


@settings(max_examples=150, deadline=None)
@given(corpora(), tree_patterns())
def test_sel_overestimates_true_matching(docs, pattern):
    """Documents truly matching p always appear in the lossless SEL result
    (skeletonisation only adds matches, never removes them)."""
    synopsis = build_synopsis(docs)
    estimator = SelectivityEstimator(synopsis)
    result = set(estimator.matching_view(pattern).ids)
    truly = {doc.doc_id for doc in docs if matches(doc, pattern)}
    assert truly <= result


@settings(max_examples=150, deadline=None)
@given(corpora(), tree_patterns())
def test_selectivity_in_unit_interval(docs, pattern):
    for mode in ("counters", "sets", "hashes"):
        estimator = SelectivityEstimator(build_synopsis(docs, mode=mode))
        value = estimator.selectivity(pattern)
        assert 0.0 <= value <= 1.0


@settings(max_examples=100, deadline=None)
@given(corpora(), tree_patterns())
def test_counters_zero_iff_no_path_support(docs, pattern):
    """Counter estimates are zero exactly when the lossless set estimate is
    zero: both require every branch to have path support somewhere."""
    sets_est = SelectivityEstimator(build_synopsis(docs, mode="sets"))
    counter_est = SelectivityEstimator(build_synopsis(docs, mode="counters"))
    sets_zero = sets_est.selectivity(pattern) == 0.0
    counter_zero = counter_est.selectivity(pattern) == 0.0
    # Counters lose correlations, never path support: they may report a
    # non-zero value where sets report zero, but not the other way round.
    if counter_zero:
        assert sets_zero


@settings(max_examples=100, deadline=None)
@given(corpora(), tree_patterns(), tree_patterns())
def test_joint_never_exceeds_marginals_sets(docs, p, q):
    estimator = SelectivityEstimator(build_synopsis(docs, mode="sets"))
    joint = estimator.joint_selectivity(p, q)
    assert joint <= estimator.selectivity(p) + 1e-12
    assert joint <= estimator.selectivity(q) + 1e-12


@settings(max_examples=100, deadline=None)
@given(corpora(), tree_patterns())
def test_hash_estimate_matches_sets_when_unbounded(docs, pattern):
    """With capacity above the corpus size the hash samples never level up,
    so hashes and sets must agree exactly."""
    sets_est = SelectivityEstimator(build_synopsis(docs, mode="sets"))
    hash_est = SelectivityEstimator(build_synopsis(docs, mode="hashes"))
    assert hash_est.selectivity(pattern) == sets_est.selectivity(pattern)
