"""The mutable SimilarityIndex: lifecycle, laziness, and pruning accounting."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.core.similarity import (
    METRICS,
    SimilarityIndex,
    SimilarityMatrix,
)
from repro.xmltree.corpus import DocumentCorpus
from tests.test_similarity import CountingProvider


@pytest.fixture()
def corpus(figure2_documents):
    return DocumentCorpus(figure2_documents)


def materialize(index):
    """Force every live row, i.e. every live pairwise value."""
    for handle in index.handles():
        index.row(handle)


class TestPopulationLifecycle:
    def test_add_returns_monotonic_handles(self, corpus):
        index = SimilarityIndex(corpus)
        first = index.add(parse_xpath("//b"))
        second = index.add(parse_xpath("//e"))
        assert second > first
        assert len(index) == 2
        assert index.handles() == [first, second]
        assert index.patterns == [parse_xpath("//b"), parse_xpath("//e")]

    def test_remove_returns_pattern_and_frees_handle(self, corpus):
        index = SimilarityIndex(corpus)
        handle = index.add(parse_xpath("//b"))
        assert index.remove(handle) == parse_xpath("//b")
        assert len(index) == 0
        assert handle not in index
        with pytest.raises(KeyError):
            index.remove(handle)
        with pytest.raises(KeyError):
            index.pattern(handle)

    def test_handles_never_reused(self, corpus):
        index = SimilarityIndex(corpus)
        handle = index.add(parse_xpath("//b"))
        index.remove(handle)
        again = index.add(parse_xpath("//b"))
        assert again != handle

    def test_constructor_population(self, corpus):
        patterns = [parse_xpath("//b"), parse_xpath("//e")]
        index = SimilarityIndex(corpus, patterns)
        assert index.patterns == patterns
        assert index.stats.adds == 2

    def test_unknown_metric_rejected(self, corpus):
        with pytest.raises(ValueError):
            SimilarityIndex(corpus, metric="M9")
        with pytest.raises(ValueError):
            SimilarityIndex(corpus).similarity(
                parse_xpath("/a"), parse_xpath("/a"), metric="M9"
            )


class TestLazyRows:
    def test_mutations_cost_no_provider_calls(self, corpus):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting, metric="M3")
        handles = [
            index.add(parse_xpath(f"/a/{tag}")) for tag in ("b", "d", "e")
        ]
        index.remove(handles[1])
        assert counting.joint_calls == {}
        assert counting.selectivity_calls == {}

    def test_row_evaluates_only_its_own_pairs(self, corpus):
        counting = CountingProvider(corpus)
        patterns = [parse_xpath("//b"), parse_xpath("//e"), parse_xpath("//o")]
        index = SimilarityIndex(counting, patterns)
        first = index.handles()[0]
        row = index.row(first)
        assert set(row) == set(index.handles())
        # Only pairs involving the first pattern were decided: 2 of 3.
        assert len(counting.joint_calls) == 2

    def test_row_values_match_matrix(self, corpus):
        patterns = [parse_xpath("//b"), parse_xpath("//e"), parse_xpath("//o")]
        for metric in METRICS:
            index = SimilarityIndex(corpus, patterns, metric=metric)
            matrix = SimilarityMatrix(corpus, patterns, metric=metric)
            handles = index.handles()
            for i, handle in enumerate(handles):
                row = index.row(handle)
                for j, other in enumerate(handles):
                    assert row[other] == matrix.values[i][j], (metric, i, j)

    def test_top_k_and_neighbors_over_live_population(self, corpus):
        patterns = [
            parse_xpath("//b"),
            parse_xpath("//o"),
            parse_xpath("//e"),
            parse_xpath("//q"),
        ]
        index = SimilarityIndex(corpus, patterns)
        b, o, e, q = index.handles()
        # //b: sim 1/2 with //e, 1/4 with //o, 0 with //q.
        assert index.top_k(b, 2) == [
            (e, pytest.approx(0.5)),
            (o, pytest.approx(0.25)),
        ]
        assert [h for h, _ in index.neighbors(b, 0.25)] == [e, o]
        index.remove(e)
        assert index.top_k(b, 2) == [
            (o, pytest.approx(0.25)),
            (q, 0.0),
        ]
        with pytest.raises(ValueError):
            index.top_k(b, 0)
        with pytest.raises(ValueError):
            index.neighbors(b, 1.5)

    def test_removed_pattern_readd_is_free(self, corpus):
        counting = CountingProvider(corpus)
        patterns = [parse_xpath("//b"), parse_xpath("//e")]
        index = SimilarityIndex(counting, patterns)
        materialize(index)
        decided = dict(counting.joint_calls)
        handle = index.handles()[1]
        index.remove(handle)
        index.add(parse_xpath("//e"))
        materialize(index)
        assert counting.joint_calls == decided


class TestClusteringIntegration:
    def test_agglomerative_reads_aligned_index(self, corpus):
        from repro.routing.community import agglomerative_clustering

        patterns = [
            parse_xpath("//b"),
            parse_xpath("//e"),
            parse_xpath("//o"),
            parse_xpath("//q"),
        ]
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting, patterns)
        via_index = agglomerative_clustering(patterns, index, n_communities=2)
        via_matrix = agglomerative_clustering(
            patterns, SimilarityMatrix(corpus, patterns), n_communities=2
        )
        assert [
            (community.leader, community.members) for community in via_index
        ] == [
            (community.leader, community.members) for community in via_matrix
        ]
        assert counting.max_joint_calls_per_pair == 1

    def test_leader_clustering_through_live_index_after_churn(self, corpus):
        from repro.routing.community import leader_clustering

        index = SimilarityIndex(corpus)
        for xpath in ("//b", "//q", "//e"):
            index.add(parse_xpath(xpath))
        index.remove(index.handles()[1])  # //q leaves
        survivors = index.patterns
        communities = leader_clustering(survivors, index, threshold=0.4)
        # //b and //e (similarity 0.5) collapse into one community.
        assert len(communities) == 1


class TestDisjointnessPruning:
    def test_disjoint_root_anchors_prune_provider_call(self, corpus):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting)
        assert index.joint_selectivity(parse_xpath("/a/b"), parse_xpath("/b")) == 0.0
        assert counting.joint_calls == {}
        assert index.stats.joint_pruned == 1
        assert index.stats.joint_evaluated == 0

    def test_pruned_pair_is_memoised(self, corpus):
        index = SimilarityIndex(corpus)
        p, q = parse_xpath("/a/b"), parse_xpath("/b")
        index.joint_selectivity(p, q)
        index.joint_selectivity(q, p)
        assert index.stats.joint_pruned == 1

    def test_descendant_patterns_are_never_pruned(self, corpus):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting)
        index.joint_selectivity(parse_xpath("//b"), parse_xpath("//q"))
        assert index.stats.joint_pruned == 0
        assert index.stats.joint_evaluated == 1

    def test_wildcard_roots_are_never_pruned(self, corpus):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting)
        # /*/b and /*/d share no tags, yet one document root can carry both.
        index.joint_selectivity(parse_xpath("/*/b"), parse_xpath("/*/d"))
        assert index.stats.joint_pruned == 0
        assert index.stats.joint_evaluated == 1

    def test_pruning_agrees_with_exact_provider(self, corpus):
        # Sound prefilter: on an exact provider the pruned value is the truth.
        pruned = SimilarityIndex(corpus, prune_disjoint=True)
        raw = SimilarityIndex(corpus, prune_disjoint=False)
        pairs = [
            (parse_xpath("/a/b"), parse_xpath("/b")),
            (parse_xpath("/a/b/e"), parse_xpath("/c/d")),
            (parse_xpath("/a/b"), parse_xpath("/a/d")),
            (parse_xpath("//b"), parse_xpath("/a/d")),
        ]
        for p, q in pairs:
            assert pruned.joint_selectivity(p, q) == raw.joint_selectivity(p, q)
            assert pruned.similarity(p, q) == raw.similarity(p, q)
        assert pruned.stats.joint_pruned > 0

    def test_prune_ratio(self, corpus):
        index = SimilarityIndex(corpus)
        assert index.stats.prune_ratio == 0.0
        index.joint_selectivity(parse_xpath("/a/b"), parse_xpath("/b"))
        index.joint_selectivity(parse_xpath("//b"), parse_xpath("//e"))
        assert index.stats.prune_ratio == pytest.approx(0.5)


class TestRatioPrefilter:
    """The selectivity-ratio bound: min(P)/max(P) caps M3."""

    @pytest.fixture()
    def skewed_corpus(self):
        # Root tag shared (tag-disjointness can never fire); /a/b matches
        # 1 of 4 documents, /a/c all 4 — ratio 0.25.
        from repro.xmltree.parser import parse_xml

        docs = [parse_xml("<a><b/><c/></a>", doc_id=0)] + [
            parse_xml("<a><c/></a>", doc_id=doc_id) for doc_id in (1, 2, 3)
        ]
        return DocumentCorpus(docs)

    def test_bounded_pair_skips_joint_call(self, skewed_corpus):
        counting = CountingProvider(skewed_corpus)
        index = SimilarityIndex(counting, m3_prune_below=0.5)
        p, q = parse_xpath("/a/b"), parse_xpath("/a/c")
        assert index(p, q) == 0.0
        assert counting.joint_calls == {}
        assert index.stats.joint_ratio_pruned == 1
        assert index.stats.joint_evaluated == 0
        # Distinct-pair accounting: re-asking does not recount.
        index(q, p)
        assert index.stats.joint_ratio_pruned == 1
        assert index.stats.prune_ratio == 1.0

    def test_ratio_above_threshold_evaluates_exactly(self, skewed_corpus):
        counting = CountingProvider(skewed_corpus)
        index = SimilarityIndex(counting, m3_prune_below=0.2)
        p, q = parse_xpath("/a/b"), parse_xpath("/a/c")
        raw = SimilarityIndex(skewed_corpus)
        assert index(p, q) == raw(p, q)
        assert index.stats.joint_ratio_pruned == 0
        assert len(counting.joint_calls) == 1

    def test_bound_is_sound_for_thresholded_clustering(self, skewed_corpus):
        # The pruned answer and the exact answer fall on the same side of
        # the threshold the bound was configured with.
        threshold = 0.5
        bounded = SimilarityIndex(skewed_corpus, m3_prune_below=threshold)
        exact = SimilarityIndex(skewed_corpus)
        pairs = [
            (parse_xpath("/a/b"), parse_xpath("/a/c")),
            (parse_xpath("/a/c"), parse_xpath("/a")),
            (parse_xpath("/a"), parse_xpath("/a/b")),
        ]
        for p, q in pairs:
            assert (bounded(p, q) >= threshold) == (exact(p, q) >= threshold)
        assert bounded.stats.joint_ratio_pruned > 0

    def test_memoised_pair_returns_exact_value(self, skewed_corpus):
        index = SimilarityIndex(skewed_corpus, m3_prune_below=0.5)
        p, q = parse_xpath("/a/b"), parse_xpath("/a/c")
        expected = SimilarityIndex(skewed_corpus)(p, q)
        # Joint already decided (direct provider-protocol call): the bound
        # steps aside and the memoised exact value is returned.
        index.joint_selectivity(p, q)
        assert index(p, q) == expected
        assert index.stats.joint_ratio_pruned == 0

    def test_bound_only_applies_to_m3(self, skewed_corpus):
        counting = CountingProvider(skewed_corpus)
        index = SimilarityIndex(counting, metric="M1", m3_prune_below=0.5)
        assert index.m3_prune_below is None
        index(parse_xpath("/a/b"), parse_xpath("/a/c"))
        assert index.stats.joint_ratio_pruned == 0
        assert len(counting.joint_calls) == 1

    def test_invalid_bound_rejected(self, skewed_corpus):
        with pytest.raises(ValueError):
            SimilarityIndex(skewed_corpus, m3_prune_below=1.5)
        with pytest.raises(ValueError):
            SimilarityIndex(skewed_corpus, prune_below=-0.1)

    def test_generic_bound_arms_any_metric(self, skewed_corpus):
        # prune_below (unlike the legacy M3-only spelling) prunes under
        # every metric, with the metric's own marginal bound.
        p, q = parse_xpath("/a/b"), parse_xpath("/a/c")
        # M2 <= (1 + 0.25) / 2 = 0.625 < 0.7: prunable.
        counting = CountingProvider(skewed_corpus)
        index = SimilarityIndex(counting, metric="M2", prune_below=0.7)
        assert index(p, q) == 0.0
        assert counting.joint_calls == {}
        assert index.stats.joint_ratio_pruned == 1
        assert index.stats.ratio_pruned_by_metric == {"M2": 1}
        # ... but not below 0.6: the bound steps aside and evaluates.
        counting = CountingProvider(skewed_corpus)
        index = SimilarityIndex(counting, metric="M2", prune_below=0.6)
        raw = SimilarityIndex(skewed_corpus, metric="M2")
        assert index(p, q) == raw(p, q)
        assert len(counting.joint_calls) == 1

    def test_m1_bound_is_direction_aware(self, skewed_corpus):
        # P(/a/b)=0.25, P(/a/c)=1.0.  M1(b|c) <= 0.25/1.0: prunable at
        # 0.5; M1(c|b) <= 0.25/0.25 = 1: must evaluate.
        counting = CountingProvider(skewed_corpus)
        index = SimilarityIndex(counting, metric="M1", prune_below=0.5)
        b, c = parse_xpath("/a/b"), parse_xpath("/a/c")
        assert index(b, c) == 0.0
        assert counting.joint_calls == {}
        assert index.stats.ratio_pruned_by_metric == {"M1": 1}
        exact = SimilarityIndex(skewed_corpus, metric="M1")
        assert index(c, b) == exact(c, b)
        assert len(counting.joint_calls) == 1
        # Each pruned direction counts once, ever.
        index(b, c)
        assert index.stats.joint_ratio_pruned == 1

    @pytest.mark.parametrize("metric", sorted(METRICS))
    def test_generic_bound_is_sound_for_thresholding(
        self, skewed_corpus, metric
    ):
        threshold = 0.5
        bounded = SimilarityIndex(
            skewed_corpus, metric=metric, prune_below=threshold
        )
        exact = SimilarityIndex(skewed_corpus, metric=metric)
        pairs = [
            (parse_xpath("/a/b"), parse_xpath("/a/c")),
            (parse_xpath("/a/c"), parse_xpath("/a")),
            (parse_xpath("/a"), parse_xpath("/a/b")),
            (parse_xpath("/a/b"), parse_xpath("/a")),
        ]
        for p, q in pairs:
            assert (bounded(p, q) >= threshold) == (
                exact(p, q) >= threshold
            ), (metric, p, q)

    def test_per_metric_counters_fold_into_totals(self, skewed_corpus):
        index = SimilarityIndex(skewed_corpus, prune_below=0.5)
        index(parse_xpath("/a/b"), parse_xpath("/a/c"))
        assert index.stats.ratio_pruned_by_metric == {"M3": 1}
        assert index.stats.joint_ratio_pruned == 1
        assert index.stats.prune_ratio == 1.0


class TestMemoCapacity:
    """The LRU cap layered on top of population-tied compaction."""

    @pytest.fixture()
    def patterns(self):
        return [parse_xpath(f"//{tag}") for tag in ("b", "e", "o", "k")]

    def test_capacity_validation(self, corpus):
        with pytest.raises(ValueError):
            SimilarityIndex(corpus, memo_capacity=0)

    def test_joint_memo_stays_bounded(self, corpus, patterns):
        index = SimilarityIndex(corpus, patterns, memo_capacity=3)
        materialize(index)  # 6 distinct pairs through a 3-entry memo
        assert len(index._joint_memo) <= 3
        assert index.stats.memo_lru_evicted >= 3

    def test_uncapped_index_never_lru_evicts(self, corpus, patterns):
        index = SimilarityIndex(corpus, patterns)
        materialize(index)
        assert index.stats.memo_lru_evicted == 0

    def test_eviction_recomputes_same_values(self, corpus, patterns):
        capped = SimilarityIndex(corpus, patterns, memo_capacity=2)
        free = SimilarityIndex(corpus, patterns)
        for p in patterns:
            for q in patterns:
                assert capped(p, q) == free(p, q)
        # A second sweep re-pays provider calls for evicted pairs but
        # still agrees.
        for p in patterns:
            for q in patterns:
                assert capped(p, q) == free(p, q)

    def test_recently_used_pairs_survive(self, corpus):
        counting = CountingProvider(corpus)
        b, e, o = (parse_xpath(f"//{t}") for t in ("b", "e", "o"))
        index = SimilarityIndex(counting, memo_capacity=2)
        index(b, e)
        index(b, o)
        index(b, e)  # touch: (b, e) is now the most recent
        calls_before = dict(counting.joint_calls)
        index(e, o)  # evicts the LRU entry (b, o)
        index(b, e)  # still memoised: no new provider call
        assert counting.joint_calls.keys() - calls_before.keys() == {
            frozenset((e, o))
        }
        index(b, o)  # evicted: recomputes
        assert index.stats.memo_lru_evicted >= 1

    def test_capacity_counts_distinct_pairs_not_calls(self, corpus, patterns):
        index = SimilarityIndex(corpus, patterns, memo_capacity=100)
        materialize(index)
        assert index.stats.memo_lru_evicted == 0
        assert len(index._joint_memo) == 6

    def test_compact_layers_under_capacity(self, corpus, patterns):
        index = SimilarityIndex(corpus, patterns, memo_capacity=10)
        materialize(index)
        victim = index.handles()[-1]
        index.remove(victim)
        evicted = index.compact()
        assert evicted > 0
        assert index.stats.memo_evicted == evicted
        # Both eviction counters are reported independently.
        assert index.stats.memo_lru_evicted == 0


class TestMemoEviction:
    @pytest.fixture()
    def patterns(self):
        return [parse_xpath("//b"), parse_xpath("//e"), parse_xpath("//o")]

    def test_compact_drops_dead_rows_only(self, corpus, patterns):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting, patterns)
        materialize(index)
        assert index.memo_size == 3 + 3  # selectivities + joint pairs
        victim = index.handles()[-1]
        index.remove(victim)
        assert index.memo_size == 6  # eviction is explicit by default
        evicted = index.compact()
        assert evicted == 1 + 2  # //o's selectivity + its two joint rows
        assert index.stats.memo_evicted == 3
        assert index.memo_size == 2 + 1
        # Survivors stayed memoised: re-materialising costs nothing new.
        decided = dict(counting.joint_calls)
        materialize(index)
        assert counting.joint_calls == decided

    def test_compact_on_clean_index_is_a_no_op(self, corpus, patterns):
        index = SimilarityIndex(corpus, patterns)
        materialize(index)
        assert index.compact() == 0
        assert index.stats.memo_evicted == 0

    def test_auto_eviction_on_remove(self, corpus, patterns):
        index = SimilarityIndex(corpus, patterns, evict_dead_memos=True)
        materialize(index)
        before = index.memo_size
        index.remove(index.handles()[-1])
        assert index.memo_size == before - 3
        assert index.stats.memo_evicted == 3
        # Values over the survivors are unchanged.
        fresh = SimilarityMatrix(corpus, index.patterns)
        handles = index.handles()
        for i, handle in enumerate(handles):
            row = index.row(handle)
            for j, other in enumerate(handles):
                assert row[other] == fresh.values[i][j]

    def test_duplicate_live_pattern_blocks_eviction(self, corpus):
        index = SimilarityIndex(
            corpus,
            [parse_xpath("//b"), parse_xpath("//b"), parse_xpath("//e")],
            evict_dead_memos=True,
        )
        materialize(index)
        before = index.memo_size
        index.remove(index.handles()[0])  # the other //b handle survives
        assert index.memo_size == before
        index.remove(index.handles()[0])  # last //b leaves
        assert index.memo_size < before

    def test_evicted_pattern_readd_recomputes_correctly(self, corpus, patterns):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting, patterns, evict_dead_memos=True)
        materialize(index)
        victim = index.handles()[-1]
        removed = index.remove(victim)
        index.add(removed)
        materialize(index)
        # The evicted pairs were re-decided (eviction trades re-add cost
        # for bounded memory)...
        assert counting.max_joint_calls_per_pair == 2
        # ...and agree with a fresh frozen build.
        fresh = SimilarityMatrix(corpus, index.patterns)
        handles = index.handles()
        for i, handle in enumerate(handles):
            row = index.row(handle)
            for j, other in enumerate(handles):
                assert row[other] == fresh.values[i][j]


class TestIncrementalCostAccounting:
    """The ISSUE acceptance bound: adding one pattern to an n-pattern
    population costs exactly n new joint-selectivity provider calls minus
    the tag-disjoint pruned pairs."""

    @pytest.fixture()
    def patterns(self):
        return [
            parse_xpath("/a"),
            parse_xpath("/a/b"),
            parse_xpath("/a/d"),
            parse_xpath("/b"),
            parse_xpath("/b/c"),
            parse_xpath("//e"),
            parse_xpath("/a//e"),
        ]

    def test_build_decides_every_distinct_pair_once(self, corpus, patterns):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting, patterns)
        materialize(index)
        n = len(patterns)
        stats = index.stats
        assert stats.joint_evaluated + stats.joint_pruned == n * (n - 1) // 2
        assert stats.joint_evaluated == len(counting.joint_calls)
        assert stats.joint_pruned > 0
        assert counting.max_joint_calls_per_pair == 1
        assert counting.max_selectivity_calls_per_pattern == 1

    def test_add_costs_exactly_n_minus_pruned(self, corpus, patterns):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting, patterns)
        materialize(index)
        n = len(patterns)
        evaluated_before = index.stats.joint_evaluated
        pruned_before = index.stats.joint_pruned
        provider_before = len(counting.joint_calls)

        index.add(parse_xpath("/a/b/e/k"))
        # Mutation alone decides nothing.
        assert index.stats.joint_evaluated == evaluated_before
        assert index.stats.joint_pruned == pruned_before

        materialize(index)
        new_evaluated = index.stats.joint_evaluated - evaluated_before
        new_pruned = index.stats.joint_pruned - pruned_before
        assert new_evaluated + new_pruned == n
        # /a/b/e/k is //-free and anchored at "a": exactly the two
        # "b"-anchored population members are pruned.
        assert new_pruned == 2
        assert len(counting.joint_calls) - provider_before == new_evaluated
        assert counting.max_joint_calls_per_pair == 1

    def test_remove_costs_nothing_and_readding_population_is_free(
        self, corpus, patterns
    ):
        counting = CountingProvider(corpus)
        index = SimilarityIndex(counting, patterns)
        materialize(index)
        decided = dict(counting.joint_calls)
        victim = index.handles()[2]
        index.remove(victim)
        materialize(index)
        assert counting.joint_calls == decided
