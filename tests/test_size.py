"""Synopsis size accounting (|HS| = nodes + edges + labels + entries)."""


from repro.synopsis.pruning import fold_leaves, merge_same_label
from repro.synopsis.size import SynopsisSize, measure
from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.tree import XMLTree


class TestSynopsisSize:
    def test_total(self):
        size = SynopsisSize(nodes=10, edges=9, label_atoms=10, entries=25)
        assert size.total == 54

    def test_approx_bytes(self):
        size = SynopsisSize(nodes=1, edges=0, label_atoms=1, entries=1)
        assert size.approx_bytes == 12

    def test_str(self):
        size = SynopsisSize(nodes=1, edges=0, label_atoms=1, entries=0)
        assert "|HS|=2" in str(size)


class TestMeasure:
    def test_empty_synopsis(self):
        size = measure(DocumentSynopsis(mode="sets"))
        assert size.nodes == 1       # the root
        assert size.edges == 0
        assert size.label_atoms == 1
        assert size.entries == 0

    def test_figure2_sets(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        size = measure(synopsis)
        assert size.nodes == 26
        assert size.edges == 25          # a tree: nodes - 1
        assert size.label_atoms == 26    # one atom per plain node
        # Ids are stored at skeleton-path final nodes only.
        expected_entries = sum(
            len(node.summary)
            for node in synopsis.iter_nodes()
            if node is not synopsis.root
        )
        assert size.entries == expected_entries

    def test_counters_one_entry_per_node(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="counters")
        size = measure(synopsis)
        assert size.entries == size.nodes

    def test_folding_moves_cost_to_labels(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        before = measure(synopsis)
        fold_leaves(synopsis, lossless_only=True)
        after = measure(synopsis)
        assert after.nodes < before.nodes
        assert after.label_atoms == before.label_atoms  # atoms preserved
        assert after.total < before.total               # nodes+edges saved

    def test_merging_reduces_nodes(self, figure2_synopsis_factory):
        synopsis = figure2_synopsis_factory(mode="sets")
        before = measure(synopsis)
        merged = merge_same_label(synopsis, min_similarity=0.0)
        assert merged > 0
        assert measure(synopsis).nodes < before.nodes

    def test_dag_edges_counted(self):
        synopsis = DocumentSynopsis(mode="sets", capacity=10)
        synopsis.insert_document(
            XMLTree.from_nested(("a", [("b", ["x"]), ("c", ["x"])]), doc_id=0)
        )
        merge_same_label(synopsis, min_similarity=0.0)
        size = measure(synopsis)
        # Nodes: root, a, b, c, x(shared) = 5; edges: root-a, a-b, a-c,
        # b-x, c-x = 5 (a DAG has edges >= nodes - 1).
        assert size.nodes == 5
        assert size.edges == 5
