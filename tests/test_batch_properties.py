"""Property suite: batched matching is invisible except in its cost.

Three layers, one contract each:

* ``PatternTrie.match_batch`` is extensionally the per-document
  ``match`` — same destinations, same patterns — with attributed
  operations that sum to the batch total and never exceed the summed
  sequential cost;
* ``RoutingTable.destinations_for_batch`` returns exactly the
  ``destinations_for`` lists (order included) in both matching modes,
  under arbitrary covering churn;
* a :class:`BatchServiceModel` engine delivers exactly the per-document
  sets of the synchronous walk (the unbatched engine's proven
  reference) under all three advertisement policies and across a
  mid-stream broker leave — batching may only change *when* documents
  are serviced, never *what* is delivered.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.engine import BatchServiceModel, DeliveryEngine, LinkModel
from repro.routing.overlay import BrokerOverlay
from repro.routing.table import RoutingTable
from repro.routing.trie import PatternTrie
from repro.xmltree.corpus import DocumentCorpus
from tests.strategies import property_max_examples, tree_patterns, xml_trees
from tests.test_selectivity_properties import corpora
from tests.test_topology_properties import POLICIES, churn, seeded_overlay

DESTINATIONS = ("link-0", "link-1", "link-2")


def churned_table(patterns, data, matching="trie"):
    """A routing table after a random covering-churn interleaving."""
    table = RoutingTable(matching=matching)
    for step in range(data.draw(st.integers(1, 10), label="table ops")):
        op = data.draw(
            st.sampled_from(["add", "add", "add", "remove", "rename"]),
            label=f"table op{step}",
        )
        if op == "add":
            table.add(
                data.draw(st.sampled_from(patterns), label=f"p{step}"),
                data.draw(st.sampled_from(DESTINATIONS), label=f"d{step}"),
            )
        elif op == "remove":
            destination = data.draw(
                st.sampled_from(DESTINATIONS), label=f"d{step}"
            )
            held = table.patterns_for(destination)
            if held:
                table.remove_pattern(
                    data.draw(st.sampled_from(held), label=f"p{step}"),
                    destination,
                )
        else:
            source = data.draw(
                st.sampled_from(DESTINATIONS), label=f"src{step}"
            )
            spare = f"renamed-{step}"
            if table.rename_destination(source, spare):
                table.rename_destination(spare, source)
    return table


class TestTrieBatchEquivalence:
    @settings(max_examples=property_max_examples(20), deadline=None)
    @given(
        st.lists(tree_patterns(), min_size=1, max_size=6),
        st.lists(xml_trees(), min_size=1, max_size=5),
        st.data(),
    )
    def test_match_batch_is_the_per_document_match(
        self, patterns, documents, data
    ):
        trie = PatternTrie()
        for index, pattern in enumerate(patterns):
            trie.add(pattern, DESTINATIONS[index % len(DESTINATIONS)])
        batch = trie.match_batch(documents)
        singles = [trie.match(document) for document in documents]
        assert [r.destinations for r in batch.results] == [
            s.destinations for s in singles
        ]
        assert [r.patterns for r in batch.results] == [
            s.patterns for s in singles
        ]
        # Attributed per-document ops partition the batch total, and
        # sharing can only make the batch cheaper than the sequence.
        assert batch.operations == sum(r.operations for r in batch.results)
        assert batch.operations <= sum(s.operations for s in singles)

    @settings(max_examples=property_max_examples(20), deadline=None)
    @given(
        st.lists(tree_patterns(), min_size=1, max_size=6),
        xml_trees(),
        st.integers(2, 5),
    )
    def test_repeated_documents_cost_once(self, patterns, document, copies):
        trie = PatternTrie()
        for pattern in patterns:
            trie.add(pattern, "link-0")
        batch = trie.match_batch([document] * copies)
        assert batch.operations == trie.match(document).operations
        assert all(r.operations == 0 for r in batch.results[1:])


class TestTableBatchEquivalence:
    @settings(max_examples=property_max_examples(15), deadline=None)
    @given(
        st.lists(tree_patterns(), min_size=1, max_size=6),
        st.lists(xml_trees(), min_size=1, max_size=4),
        st.sampled_from(["trie", "linear"]),
        st.data(),
    )
    def test_batch_lists_equal_sequential_lists_under_churn(
        self, patterns, documents, matching, data
    ):
        table = churned_table(patterns, data, matching)
        expected = [
            table.destinations_for(document)[0] for document in documents
        ]
        sequential_ops = sum(
            table.destinations_for(document)[1] for document in documents
        )
        batch = table.destinations_for_batch(documents)
        assert batch.destinations == expected
        assert batch.total_operations <= sequential_ops


def batched_engine(overlay, rate, corpus, leave=None):
    engine = DeliveryEngine(
        overlay,
        service=BatchServiceModel(
            base=0.4, per_match=0.05, per_doc=0.1, max_batch=3
        ),
        links=LinkModel(default=0.5),
        allow_topology_churn=leave is not None,
    )
    engine.publish_corpus(corpus, rate=rate)
    if leave is not None:
        when, retiring = leave
        engine.schedule_leave(when, retiring)
    return engine


class TestBatchedEngineEquivalence:
    @settings(max_examples=property_max_examples(8), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.sampled_from([name for name, _ in POLICIES]),
        st.sampled_from([0.4, 6.0]),
        st.data(),
    )
    def test_batched_run_equals_sync_walk_after_churn(
        self, docs, patterns, policy_name, rate, data
    ):
        # The sync walk is the unbatched engine's proven reference
        # (test_sync_walk_equals_event_engine_after_churn), so equality
        # here is equality with the unbatched engine — at high rate the
        # drains genuinely batch, at low rate they degrade to singles.
        corpus = DocumentCorpus(docs)
        policy = dict(POLICIES)[policy_name]()
        provider = corpus if policy.uses_similarity else None
        overlay = seeded_overlay(
            "random_tree", 3, patterns, policy, provider, data
        )
        for _ in churn(overlay, patterns, data):
            pass
        order = sorted(overlay.brokers)
        expected = {
            index: frozenset(
                overlay.route(document, order[index % len(order)])[0]
            )
            for index, document in enumerate(corpus.documents)
        }
        engine = batched_engine(overlay, rate, corpus)
        engine.run()
        assert engine.delivered_sets() == expected, policy_name

    @settings(max_examples=property_max_examples(8), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from([2.0, 8.0]),
        st.data(),
    )
    def test_leave_mid_batch_never_loses_deliveries(
        self, docs, patterns, rate, data
    ):
        # A broker retiring while a batch is queued or in service must
        # reinject every job of the batch — exact delivery survives.
        corpus = DocumentCorpus(docs)
        overlay = BrokerOverlay.build("random_tree", 4, seed=9)
        subscriptions = [
            overlay.attach(
                data.draw(st.integers(0, 3), label="home"), pattern
            )
            for pattern in patterns
        ]
        overlay.advertise_subscriptions()
        wanted = {
            index: frozenset(
                subscription
                for subscription, pattern in zip(subscriptions, patterns, strict=True)
                if document.doc_id in corpus.match_set(pattern)
            )
            for index, document in enumerate(corpus.documents)
        }
        retiring = data.draw(st.integers(0, 3), label="retiring")
        when = data.draw(st.sampled_from([0.3, 1.1, 2.7]), label="when")
        engine = batched_engine(
            overlay, rate, corpus, leave=(when, retiring)
        )
        stats = engine.run()
        assert engine.delivered_sets() == wanted
        assert stats.serviced_documents >= len(corpus.documents)
