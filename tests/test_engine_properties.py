"""Property-based sync/async equivalence for the delivery engine.

The engine consumes the same broker-local step
(:meth:`BrokerOverlay.process_at`) as the synchronous walk, so for any
workload, topology and advertisement regime it must deliver *exactly* the
same subscriber sets — timing may differ, delivery semantics may not.
The sweep also pins determinism: every run is replayed and must reproduce
its stats and schedule bit for bit.
"""

from __future__ import annotations

import hashlib
import pathlib
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pattern_parser import parse_xpath
from repro.routing.engine import (
    ClosedLoopSource,
    DeliveryEngine,
    LinkModel,
    ServiceModel,
)
from repro.routing.overlay import TOPOLOGIES, BrokerOverlay
from repro.routing.policy import QueuePolicy, WeightedFairScheduling
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.parser import parse_xml
from tests.strategies import tree_patterns
from tests.test_selectivity_properties import corpora


def build_routed_overlay(topology, n_brokers, patterns, regime, corpus):
    overlay = BrokerOverlay.build(topology, n_brokers, seed=5)
    overlay.attach_round_robin(patterns)
    if regime == "per_subscription":
        overlay.advertise_subscriptions()
    else:
        overlay.advertise_communities(corpus, threshold=regime)
    return overlay


def engine_run(overlay, corpus, rate, service, links):
    engine = DeliveryEngine(overlay, service=service, links=links)
    engine.publish_corpus(corpus, rate=rate)
    stats = engine.run()
    return stats, engine.delivered_sets()


class TestSyncAsyncEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.sampled_from(sorted(TOPOLOGIES)),
        st.integers(min_value=1, max_value=4),
        st.sampled_from(["per_subscription", 0.3, 0.7]),
        st.sampled_from([0.25, 1.0, 10.0]),
    )
    def test_engine_delivers_route_corpus_sets(
        self, docs, patterns, topology, n_brokers, regime, rate
    ):
        corpus = DocumentCorpus(docs)
        overlay = build_routed_overlay(
            topology, n_brokers, patterns, regime, corpus
        )
        expected = {
            index: frozenset(
                overlay.route(document, index % n_brokers)[0]
            )
            for index, document in enumerate(corpus.documents)
        }
        _, delivered = engine_run(
            overlay, corpus, rate, ServiceModel(), LinkModel()
        )
        assert delivered == expected

    @settings(max_examples=15, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from(sorted(TOPOLOGIES)),
        st.sampled_from(["per_subscription", 0.5]),
        st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
    )
    def test_runs_replay_bit_for_bit(
        self, docs, patterns, topology, regime, rate
    ):
        corpus = DocumentCorpus(docs)
        overlay = build_routed_overlay(topology, 3, patterns, regime, corpus)
        service = ServiceModel(base=0.1, per_match=0.3)
        links = LinkModel(default=0.7, overrides={(0, 1): 2.0})
        first = engine_run(overlay, corpus, rate, service, links)
        second = engine_run(overlay, corpus, rate, service, links)
        assert first == second

    @settings(max_examples=15, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=4),
    )
    def test_match_operations_agree_with_sync_path(
        self, docs, patterns, n_brokers
    ):
        # Same steps, same filtering cost: the engine's total match
        # operations equal the synchronous walk's, document by document.
        corpus = DocumentCorpus(docs)
        overlay = build_routed_overlay(
            "chain", n_brokers, patterns, "per_subscription", corpus
        )
        expected_operations = 0
        for index, document in enumerate(corpus.documents):
            _, operations, _ = overlay.route(document, index % n_brokers)
            expected_operations += sum(operations.values())
        stats, _ = engine_run(
            overlay, corpus, 1.0, ServiceModel(), LinkModel()
        )
        assert stats.match_operations == expected_operations


def closed_loop_digest() -> str:
    """Digest of a fixed closed-loop scenario, for cross-process replay.

    Exercises every seeded path at once: the source's jitter RNG, NACK
    back-pressure through a capacity-1 queue, AIMD window moves, and
    weighted-fair service selection.  Any hidden nondeterminism (hash
    randomisation, set ordering, wall clock) changes the digest.
    """
    overlay = BrokerOverlay.chain(3)
    overlay.attach(0, parse_xpath("/a/b"))
    overlay.attach(1, parse_xpath("//b"))
    overlay.attach(2, parse_xpath("/a"))
    overlay.advertise_subscriptions()
    shapes = ("<a><b/></a>", "<a><c/></a>", "<b/>", "<a><a><b/></a></a>")
    corpus = DocumentCorpus(
        [parse_xml(shapes[i % len(shapes)], doc_id=i) for i in range(16)]
    )
    engine = DeliveryEngine(
        overlay,
        service=ServiceModel(base=0.4, per_match=0.1),
        links=LinkModel(default=0.6),
        scheduling=WeightedFairScheduling({0: 2.0, 1: 1.0}),
        queue_policy=QueuePolicy(1, "nack"),
    )
    engine.attach_source(
        ClosedLoopSource(
            corpus,
            at_broker=0,
            initial_window=2.0,
            feedback_delay=0.3,
            jitter=0.5,
            seed=17,
        )
    )
    stats = engine.run()
    canonical = repr(
        (
            stats,
            sorted(
                (index, sorted(ids))
                for index, ids in engine.delivered_sets().items()
            ),
            engine.source_report(0),
        )
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class TestClosedLoopDeterminism:
    def test_seeded_source_replays_across_processes(self):
        # In-process replay can hide nondeterminism that only shows up
        # across interpreter boundaries (PYTHONHASHSEED, import order);
        # a fresh interpreter must reproduce the digest exactly.
        local = closed_loop_digest()
        assert local == closed_loop_digest()
        repo_root = pathlib.Path(__file__).resolve().parent.parent
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                "from tests.test_engine_properties import closed_loop_digest;"
                "print(closed_loop_digest())",
            ],
            cwd=repo_root,
            env={"PYTHONPATH": str(repo_root / "src"), "PYTHONHASHSEED": "random"},
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == local
