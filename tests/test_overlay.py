"""Multi-broker overlay routing over the Figure 2 corpus."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.routing.overlay import TOPOLOGIES, BrokerOverlay, SubscriptionId
from repro.xmltree.corpus import DocumentCorpus


@pytest.fixture()
def corpus(figure2_documents):
    return DocumentCorpus(figure2_documents)


@pytest.fixture()
def subscriptions():
    return [
        parse_xpath("/a/b"),
        parse_xpath("/a/b/e"),
        parse_xpath("/a/b/e/k"),
        parse_xpath("/a/d"),
        parse_xpath("/a/d/e/m"),
        parse_xpath("/a"),
    ]


def build_overlay(topology, subscriptions, n_brokers=3):
    overlay = BrokerOverlay.build(topology, n_brokers, seed=7)
    overlay.attach_round_robin(subscriptions)
    return overlay


def table_signature(overlay):
    """Per-broker routing state, comparable across id histories.

    Forward entries are kept verbatim; deliver payload subscriber ids are
    renumbered by survivor rank, so an overlay that lived through churn
    compares equal to one freshly built from the surviving subscriptions.
    """
    rank = {
        subscriber_id: position
        for position, subscriber_id in enumerate(sorted(overlay.subscriptions))
    }
    signature = {}
    for broker_id, node in overlay.brokers.items():
        entries = set()
        for entry in node.table:
            kind, payload = entry.destination
            if kind == "deliver":
                # Departed subscribers (stale tables) map to unique
                # negative ranks so they never collide with survivors.
                payload = tuple(
                    sorted(rank.get(member, -1 - member) for member in payload)
                )
            entries.add((entry.pattern, kind, payload))
        signature[broker_id] = frozenset(entries)
    return signature


def rebuild_from_survivors(overlay, topology, n_brokers=3, community=None):
    """A fresh overlay advertised from *overlay*'s surviving subscriptions
    alone (same homes, same order)."""
    fresh = BrokerOverlay.build(topology, n_brokers, seed=7)
    for home_id, pattern in overlay.subscriptions.values():
        fresh.attach(home_id, pattern)
    if community is None:
        fresh.advertise_subscriptions()
    else:
        provider, threshold = community
        fresh.advertise_communities(provider, threshold=threshold)
    return fresh


class TestTopologies:
    def test_chain_degrees(self):
        overlay = BrokerOverlay.chain(4)
        degrees = sorted(node.degree() for node in overlay.brokers.values())
        assert degrees == [1, 1, 2, 2]

    def test_star_hub(self):
        overlay = BrokerOverlay.star(5)
        assert overlay.brokers[0].degree() == 4
        assert all(overlay.brokers[i].degree() == 1 for i in range(1, 5))

    def test_random_tree_is_connected_tree(self):
        overlay = BrokerOverlay.random_tree(12, seed=3)
        total_degree = sum(node.degree() for node in overlay.brokers.values())
        assert total_degree == 2 * 11  # n-1 edges

    def test_random_tree_seed_determinism(self):
        a = BrokerOverlay.random_tree(10, seed=5)
        b = BrokerOverlay.random_tree(10, seed=5)
        assert [n.neighbors for n in a.brokers.values()] == [
            n.neighbors for n in b.brokers.values()
        ]

    def test_single_broker(self):
        overlay = BrokerOverlay.chain(1)
        assert len(overlay.brokers) == 1

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            BrokerOverlay.build("hypercube", 4)

    def test_rejects_non_tree_edge_count(self):
        with pytest.raises(ValueError):
            BrokerOverlay(3, [(0, 1)])

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError):
            BrokerOverlay(4, [(0, 1), (0, 1), (2, 3)])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            BrokerOverlay(2, [(0, 0)])


class TestSubscriptions:
    def test_attach_assigns_sequential_ids(self, subscriptions):
        overlay = BrokerOverlay.chain(2)
        ids = [overlay.attach(0, p) for p in subscriptions]
        assert ids == list(range(len(subscriptions)))

    def test_attach_unknown_broker(self, subscriptions):
        overlay = BrokerOverlay.chain(2)
        with pytest.raises(ValueError):
            overlay.attach(9, subscriptions[0])

    def test_round_robin_spreads_evenly(self, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        sizes = [
            len(node.local_subscribers) for node in overlay.brokers.values()
        ]
        assert sizes == [2, 2, 2]

    def test_route_without_advertisement_raises(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        with pytest.raises(ValueError):
            overlay.route_corpus(corpus)


class TestPerSubscriptionRouting:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_exact_delivery_everywhere(self, corpus, subscriptions, topology):
        overlay = build_overlay(topology, subscriptions)
        overlay.advertise_subscriptions()
        stats = overlay.route_corpus(corpus)
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        assert stats.mode == "per_subscription"

    @pytest.mark.parametrize("publish_at", [0, 1, 2, "round_robin"])
    def test_publish_point_never_affects_delivery(
        self, corpus, subscriptions, publish_at
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        stats = overlay.route_corpus(corpus, publish_at=publish_at)
        assert stats.precision == 1.0
        assert stats.recall == 1.0

    def test_covering_prunes_advertisements(self):
        # Ten identical subscriptions at the end of a long chain: the first
        # advertisement installs state everywhere, the rest die at the
        # first hop, so ads stay far below the no-covering flood.
        overlay = BrokerOverlay.chain(6)
        for _ in range(10):
            overlay.attach(5, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        no_covering_flood = 10 * 5
        assert overlay.advertisement_messages == 5 + 9
        assert overlay.advertisement_messages < no_covering_flood
        # Forward state: one entry per chain link.
        stats_tables = [
            len(overlay.brokers[i].table) for i in range(6)
        ]
        assert stats_tables == [1, 1, 1, 1, 1, 10]

    def test_general_subscription_covers_narrow_ones(self, corpus):
        overlay = BrokerOverlay.chain(3)
        overlay.attach(2, parse_xpath("/a"))
        overlay.attach(2, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        # Brokers 0 and 1 only need the maximal pattern /a per link.
        assert len(overlay.brokers[0].table) == 1
        assert len(overlay.brokers[1].table) == 1
        stats = overlay.route_corpus(corpus)
        assert stats.recall == 1.0
        assert stats.precision == 1.0


class TestProcessAt:
    """The broker-local step shared by route() and the event engine."""

    def test_step_reports_deliveries_forwards_and_cost(
        self, figure2_documents, subscriptions
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        document = figure2_documents[0]
        step = overlay.process_at(1, document)
        assert step.match_operations > 0
        assert all(isinstance(s, int) for s in step.deliveries)
        assert set(step.forwards) <= set(overlay.brokers[1].neighbors)

    def test_arrival_link_is_never_forwarded_back(
        self, figure2_documents, subscriptions
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        document = figure2_documents[0]
        step = overlay.process_at(1, document, arrived_from=0)
        assert 0 not in step.forwards

    def test_stepwise_walk_reproduces_route(
        self, figure2_documents, subscriptions
    ):
        overlay = build_overlay("random_tree", subscriptions)
        overlay.advertise_subscriptions()
        for document in figure2_documents:
            delivered, operations, forwards = overlay.route(document, 0)
            seen = set()
            total_operations = 0
            total_forwards = 0
            frontier = [(0, None)]
            while frontier:
                broker_id, origin = frontier.pop()
                step = overlay.process_at(broker_id, document, origin)
                seen |= step.deliveries
                total_operations += step.match_operations
                total_forwards += len(step.forwards)
                frontier.extend(
                    (neighbor, broker_id) for neighbor in step.forwards
                )
            assert seen == delivered
            assert total_operations == sum(operations.values())
            assert total_forwards == forwards

    def test_unknown_broker_rejected(self, figure2_documents, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        with pytest.raises(ValueError):
            overlay.process_at(9, figure2_documents[0])


class TestCommunityRouting:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_aggregation_shrinks_state_keeps_recall(
        self, corpus, subscriptions, topology
    ):
        overlay = build_overlay(topology, subscriptions)
        overlay.advertise_subscriptions()
        baseline = overlay.route_corpus(corpus)
        overlay.advertise_communities(corpus, threshold=0.5)
        aggregated = overlay.route_corpus(corpus)
        assert aggregated.total_table_entries <= baseline.total_table_entries
        assert aggregated.match_operations <= baseline.match_operations
        assert aggregated.recall >= 0.9

    def test_threshold_one_is_near_exact(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=1.0)
        stats = overlay.route_corpus(corpus)
        # Equivalence-class communities deliver exactly the right documents.
        assert stats.precision == 1.0
        assert stats.recall == 1.0

    def test_communities_recorded_per_broker(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        communities = [
            community
            for node in overlay.brokers.values()
            for community in node.communities
        ]
        members = sorted(
            subscriber
            for _, group in communities
            for subscriber in group
        )
        assert members == list(range(len(subscriptions)))

    def test_mode_label_carries_threshold(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.7)
        assert overlay.route_corpus(corpus).mode == "community(threshold=0.7)"

    def test_cluster_threshold_feeds_ratio_prefilter(
        self, corpus, subscriptions
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        for node in overlay.brokers.values():
            assert node.index.m3_prune_below == 0.5

    def test_ratio_prefilter_opt_out(self, corpus, subscriptions):
        # Estimator-backed callers can keep their provider's raw
        # clustering: no bound is installed and no pair is ratio-pruned.
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(
            corpus, threshold=0.5, ratio_prefilter=False
        )
        overlay.route_corpus(corpus)
        for node in overlay.brokers.values():
            assert node.index.m3_prune_below is None
            assert node.index.stats.joint_ratio_pruned == 0

    def test_ratio_prefilter_never_changes_aggregation(
        self, corpus, subscriptions
    ):
        # On an exact provider the bound is sound: each broker's clustering
        # equals one computed with the bound disabled.
        from repro.core.similarity import SimilarityIndex
        from repro.routing.community import leader_clustering

        def shapes(communities):
            return [
                (community.leader, community.members)
                for community in communities
            ]

        for threshold in (0.3, 0.5, 0.7):
            overlay = build_overlay("chain", subscriptions)
            overlay.advertise_communities(corpus, threshold=threshold)
            for node in overlay.brokers.values():
                local = [
                    overlay.subscriptions[subscriber][1]
                    for subscriber in node.local_subscribers
                ]
                expected = leader_clustering(
                    local, SimilarityIndex(corpus), threshold
                )
                assert shapes(
                    leader_clustering(local, node.index, threshold)
                ) == shapes(expected)


class TestSubscriptionLifecycle:
    def test_subscribe_returns_subscription_id(self, subscriptions):
        overlay = BrokerOverlay.chain(2)
        subscription = overlay.subscribe(0, subscriptions[0])
        assert isinstance(subscription, SubscriptionId)
        assert subscription == 0
        assert "SubscriptionId" in repr(subscription)

    def test_subscribe_before_advertisement_is_membership_only(
        self, subscriptions
    ):
        overlay = BrokerOverlay.chain(3)
        overlay.subscribe(0, subscriptions[0])
        assert all(len(n.table) == 0 for n in overlay.brokers.values())

    def test_unsubscribe_unknown_raises(self, subscriptions):
        overlay = BrokerOverlay.chain(2)
        with pytest.raises(ValueError):
            overlay.unsubscribe(7)
        subscription = overlay.subscribe(0, subscriptions[0])
        overlay.unsubscribe(subscription)
        with pytest.raises(ValueError):
            overlay.unsubscribe(subscription)

    def test_unsubscribe_accepts_plain_int(self, subscriptions):
        overlay = BrokerOverlay.chain(2)
        subscription = overlay.subscribe(1, subscriptions[0])
        assert overlay.unsubscribe(int(subscription)) == subscriptions[0]
        assert len(overlay.subscriptions) == 0

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_churned_per_subscription_routing_stays_exact(
        self, corpus, subscriptions, topology
    ):
        overlay = build_overlay(topology, subscriptions[:4])
        overlay.advertise_subscriptions()
        late = [overlay.subscribe(2, p) for p in subscriptions[4:]]
        stats = overlay.route_corpus(corpus)
        assert stats.subscribers == len(subscriptions)
        assert stats.precision == 1.0 and stats.recall == 1.0
        overlay.unsubscribe(late[0])
        stats = overlay.route_corpus(corpus)
        assert stats.subscribers == len(subscriptions) - 1
        assert stats.precision == 1.0 and stats.recall == 1.0

    def test_subscribe_advertises_incrementally(self, subscriptions):
        overlay = BrokerOverlay.chain(3)
        overlay.advertise_subscriptions()
        before = overlay.advertisement_messages
        overlay.subscribe(0, subscriptions[0])
        # One advertisement travelled the two links of the chain.
        assert overlay.advertisement_messages == before + 2
        assert all(len(n.table) >= 1 for n in overlay.brokers.values())

    def test_unsubscribe_restores_covered_entry_downstream(self, corpus):
        # /a (broker 2) covers /a/b (broker 2) at brokers 0 and 1; when /a
        # leaves, the covered advertisement must be resurrected and
        # re-announced all the way down the chain.
        overlay = BrokerOverlay.chain(3)
        wide = overlay.attach(2, parse_xpath("/a"))
        overlay.attach(2, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        assert overlay.brokers[0].table.patterns_for(("forward", 1)) == [
            parse_xpath("/a")
        ]
        overlay.unsubscribe(wide)
        assert overlay.brokers[0].table.patterns_for(("forward", 1)) == [
            parse_xpath("/a/b")
        ]
        assert overlay.brokers[1].table.patterns_for(("forward", 2)) == [
            parse_xpath("/a/b")
        ]
        stats = overlay.route_corpus(corpus)
        assert stats.precision == 1.0 and stats.recall == 1.0

    def test_duplicate_subscription_unsubscribe_keeps_shared_state(self):
        # Ten identical subscriptions share one advertisement flood; nine
        # departures are absorbed locally, the last clears the chain.
        overlay = BrokerOverlay.chain(6)
        ids = [overlay.attach(5, parse_xpath("/a/b")) for _ in range(10)]
        overlay.advertise_subscriptions()
        for subscription in ids[:9]:
            overlay.unsubscribe(subscription)
            assert [len(overlay.brokers[i].table) for i in range(5)] == [1] * 5
        overlay.unsubscribe(ids[9])
        assert all(len(n.table) == 0 for n in overlay.brokers.values())

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_unsubscribe_matches_rebuild_per_subscription(
        self, subscriptions, topology
    ):
        # The ISSUE acceptance: after unsubscribing, every broker's routing
        # table equals one built from the surviving subscriptions alone.
        overlay = build_overlay(topology, subscriptions)
        overlay.advertise_subscriptions()
        for victim in (5, 1, 2):  # includes /a, which covers everything
            overlay.unsubscribe(victim)
            rebuilt = rebuild_from_survivors(overlay, topology)
            assert table_signature(overlay) == table_signature(rebuilt)

    @pytest.mark.parametrize("threshold", [0.3, 0.5, 1.0])
    def test_unsubscribe_matches_rebuild_community(
        self, corpus, subscriptions, threshold
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=threshold)
        for victim in (0, 5, 3):
            overlay.unsubscribe(victim)
            rebuilt = rebuild_from_survivors(
                overlay, "chain", community=(corpus, threshold)
            )
            assert table_signature(overlay) == table_signature(rebuilt)

    @pytest.mark.parametrize("threshold", [0.3, 0.5, 1.0])
    def test_subscribe_matches_rebuild_community(
        self, corpus, subscriptions, threshold
    ):
        overlay = build_overlay("chain", subscriptions[:3])
        overlay.advertise_communities(corpus, threshold=threshold)
        for position, pattern in enumerate(subscriptions[3:]):
            overlay.subscribe(position % 3, pattern)
            rebuilt = rebuild_from_survivors(
                overlay, "chain", community=(corpus, threshold)
            )
            assert table_signature(overlay) == table_signature(rebuilt)

    def test_community_churn_reaggregates_home_broker_only(
        self, corpus, subscriptions
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        others_before = {
            broker_id: list(node.communities)
            for broker_id, node in overlay.brokers.items()
            if broker_id != 1
        }
        overlay.subscribe(1, parse_xpath("/a/b/e"))
        for broker_id, communities in others_before.items():
            assert overlay.brokers[broker_id].communities == communities

    def test_community_churn_reuses_index_memo(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        node = overlay.brokers[1]
        decided_before = node.index.stats.joint_evaluated
        population = len(node.local_subscribers)
        subscription = overlay.subscribe(1, parse_xpath("/a/b/e/k"))
        # The arrival decides at most its own pairs against the population.
        decided = node.index.stats.joint_evaluated - decided_before
        assert decided <= population
        # Departure decides nothing new at all.
        decided_before = node.index.stats.joint_evaluated
        overlay.unsubscribe(subscription)
        assert node.index.stats.joint_evaluated == decided_before

    def test_unsubscribe_of_unadvertised_attachment_is_membership_only(self):
        # A subscriber attached after the bulk advertisement has no
        # advertisement state; unsubscribing it must not strip the state
        # of a surviving subscriber with the same pattern.
        overlay = BrokerOverlay.chain(3)
        overlay.attach(0, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        late = overlay.attach(0, parse_xpath("/a/b"))
        overlay.unsubscribe(late)
        assert len(overlay.subscriptions) == 1
        assert overlay.brokers[1].table.patterns_for(("forward", 0)) == [
            parse_xpath("/a/b")
        ]
        assert overlay.brokers[2].table.patterns_for(("forward", 1)) == [
            parse_xpath("/a/b")
        ]

    def test_unsubscribe_of_unadvertised_attachment_community(
        self, corpus, subscriptions
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        before = {
            broker_id: frozenset(
                (entry.pattern, entry.destination) for entry in node.table
            )
            for broker_id, node in overlay.brokers.items()
        }
        late = overlay.attach(1, parse_xpath("/a/b"))
        overlay.unsubscribe(late)  # must not raise, must not touch tables
        assert late not in overlay.subscriptions
        after = {
            broker_id: frozenset(
                (entry.pattern, entry.destination) for entry in node.table
            )
            for broker_id, node in overlay.brokers.items()
        }
        assert after == before

    def test_member_join_costs_no_advertisement_traffic(self, corpus):
        # A subscriber joining an existing community whose advertised
        # pattern survives only swaps the home broker's deliver entry; the
        # rest of the overlay routes on the pattern, so no unadvertise /
        # re-flood traffic is spent.
        overlay = BrokerOverlay.chain(8)
        overlay.attach(0, parse_xpath("/a/b"))
        overlay.advertise_communities(corpus, threshold=0.0)
        before = overlay.advertisement_messages
        joined = overlay.subscribe(0, parse_xpath("/a/b/e"))
        assert overlay.advertisement_messages == before
        ((advertised, members),) = overlay.brokers[0].communities
        assert advertised == parse_xpath("/a/b") and joined in members
        overlay.unsubscribe(joined)
        assert overlay.advertisement_messages == before

    def test_unadvertised_attachment_stays_out_of_aggregation(
        self, corpus, subscriptions
    ):
        # An attach-ed (never advertised) member must not be pulled into
        # community advertisements by unrelated churn at its broker, or
        # its later unsubscribe could not withdraw it.
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        silent = overlay.attach(1, parse_xpath("/a/b"))
        churner = overlay.subscribe(1, parse_xpath("/a/b/e"))  # reaggregates
        members = {
            member
            for _, group in overlay.brokers[1].communities
            for member in group
        }
        assert churner in members and silent not in members
        overlay.unsubscribe(silent)
        overlay.unsubscribe(churner)
        rebuilt = rebuild_from_survivors(
            overlay, "chain", community=(corpus, 0.5)
        )
        assert table_signature(overlay) == table_signature(rebuilt)

    def test_detach_retires_community_index_entry(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        node = overlay.brokers[1]
        population_before = len(node.index)
        tables_before = {
            broker_id: frozenset(
                (entry.pattern, entry.destination) for entry in n.table
            )
            for broker_id, n in overlay.brokers.items()
        }
        victim = node.local_subscribers[0]
        overlay.detach(victim)
        # Broker-internal state shrinks; routing tables stay (stale).
        assert len(node.index) == population_before - 1
        assert victim not in node.handles
        assert {
            broker_id: frozenset(
                (entry.pattern, entry.destination) for entry in n.table
            )
            for broker_id, n in overlay.brokers.items()
        } == tables_before

    def test_detach_leaves_tables_stale(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        entries_before = table_signature(overlay)
        overlay.detach(0)
        # Membership shrank but no unadvertise happened: state is stale.
        assert len(overlay.subscriptions) == len(subscriptions) - 1
        stale = {
            broker_id: {
                (pattern, kind, payload)
                for pattern, kind, payload in entries
                if kind == "forward"
            }
            for broker_id, entries in entries_before.items()
        }
        now = {
            broker_id: {
                (pattern, kind, payload)
                for pattern, kind, payload in entries
                if kind == "forward"
            }
            for broker_id, entries in table_signature(overlay).items()
        }
        assert now == stale


class TestBatchChurn:
    """subscribe_many / unsubscribe_many: one diff per touched broker."""

    def test_subscribe_many_before_advertisement_is_membership_only(
        self, subscriptions
    ):
        overlay = BrokerOverlay.chain(3)
        ids = overlay.subscribe_many(1, subscriptions[:3])
        assert ids == [0, 1, 2]
        assert all(len(n.table) == 0 for n in overlay.brokers.values())

    def test_empty_batches_are_no_ops(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        before = overlay.advertisement_messages
        assert overlay.subscribe_many(0, []) == []
        assert overlay.unsubscribe_many([]) == []
        assert overlay.advertisement_messages == before

    def test_unsubscribe_many_rejects_unknown_and_duplicate_ids(
        self, corpus, subscriptions
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        with pytest.raises(ValueError):
            overlay.unsubscribe_many([0, 99])
        with pytest.raises(ValueError):
            overlay.unsubscribe_many([0, 0])
        # The failed batches changed nothing.
        assert len(overlay.subscriptions) == len(subscriptions)

    @pytest.mark.parametrize("threshold", [0.3, 0.5, 1.0])
    def test_batch_matches_rebuild_community(
        self, corpus, subscriptions, threshold
    ):
        overlay = build_overlay("chain", subscriptions[:3])
        overlay.advertise_communities(corpus, threshold=threshold)
        ids = overlay.subscribe_many(1, subscriptions[3:])
        rebuilt = rebuild_from_survivors(
            overlay, "chain", community=(corpus, threshold)
        )
        assert table_signature(overlay) == table_signature(rebuilt)
        assert overlay.unsubscribe_many(ids) == subscriptions[3:]
        rebuilt = rebuild_from_survivors(
            overlay, "chain", community=(corpus, threshold)
        )
        assert table_signature(overlay) == table_signature(rebuilt)

    def test_batch_matches_rebuild_per_subscription(self, subscriptions):
        overlay = build_overlay("random_tree", subscriptions[:3])
        overlay.advertise_subscriptions()
        ids = overlay.subscribe_many(2, subscriptions[3:])
        rebuilt = rebuild_from_survivors(overlay, "random_tree")
        assert table_signature(overlay) == table_signature(rebuilt)
        overlay.unsubscribe_many(ids)
        rebuilt = rebuild_from_survivors(overlay, "random_tree")
        assert table_signature(overlay) == table_signature(rebuilt)

    def test_unsubscribe_many_spans_brokers(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        # One victim homed on each broker, retired in one batch.
        victims = [0, 1, 2]
        patterns = [overlay.subscriptions[v][1] for v in victims]
        assert overlay.unsubscribe_many(victims) == patterns
        rebuilt = rebuild_from_survivors(
            overlay, "chain", community=(corpus, 0.5)
        )
        assert table_signature(overlay) == table_signature(rebuilt)

    def test_batch_reaggregates_once_per_broker(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        node = overlay.brokers[1]
        adds_before = node.index.stats.adds
        burst = [parse_xpath("/a/b/e"), parse_xpath("/a/b/e/k")]
        overlay.subscribe_many(1, burst)
        # Both arrivals joined the live index; other brokers untouched.
        assert node.index.stats.adds == adds_before + len(burst)
        for broker_id in (0, 2):
            other = overlay.brokers[broker_id]
            assert other.index.stats.adds == len(
                other.local_subscribers
            )

    def test_unadvertised_attachments_skip_batch_reaggregation(
        self, corpus, subscriptions
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        silent = overlay.attach(1, parse_xpath("/a/b"))
        before = {
            broker_id: frozenset(
                (entry.pattern, entry.destination) for entry in node.table
            )
            for broker_id, node in overlay.brokers.items()
        }
        assert overlay.unsubscribe_many([silent]) == [parse_xpath("/a/b")]
        after = {
            broker_id: frozenset(
                (entry.pattern, entry.destination) for entry in node.table
            )
            for broker_id, node in overlay.brokers.items()
        }
        assert after == before


class TestStats:
    def test_flooding_baseline(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        stats = overlay.flooding_stats(corpus)
        assert stats.recall == 1.0
        assert stats.precision < 1.0
        assert stats.match_operations == 0
        assert stats.forwards == len(corpus) * 2

    def test_per_broker_accounting_sums_to_totals(self, corpus, subscriptions):
        overlay = build_overlay("star", subscriptions)
        overlay.advertise_subscriptions()
        stats = overlay.route_corpus(corpus)
        assert sum(stats.match_operations_by_broker.values()) == (
            stats.match_operations
        )
        assert stats.total_table_entries == sum(stats.table_sizes.values())
        assert stats.matches_per_document == pytest.approx(
            stats.match_operations / len(corpus)
        )
        assert stats.forwards_per_document == pytest.approx(
            stats.forwards / len(corpus)
        )

    def test_reset_routing_clears_state(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        overlay.reset_routing()
        assert overlay.mode is None
        assert all(len(n.table) == 0 for n in overlay.brokers.values())
        with pytest.raises(ValueError):
            overlay.route_corpus(corpus)


class TestTopologyLifecycle:
    """Broker join/leave: graft, split, merge, and their bookkeeping."""

    def test_add_broker_mints_fresh_ids(self, subscriptions):
        from repro.routing.overlay import BrokerId

        overlay = BrokerOverlay.chain(3)
        first = overlay.add_broker(0)
        assert isinstance(first, BrokerId) and first == 3
        assert "BrokerId" in repr(first)
        overlay.remove_broker(first)
        # Ids are never reused, even after a removal.
        assert overlay.add_broker(0) == 4
        assert sorted(overlay.brokers) == [0, 1, 2, 4]

    def test_add_broker_validates_parent_and_split(self):
        overlay = BrokerOverlay.chain(3)
        with pytest.raises(ValueError):
            overlay.add_broker(9)
        with pytest.raises(ValueError):
            overlay.add_broker(0, split=2)  # 0 — 2 is not an edge

    def test_remove_broker_validates_victim_and_target(self):
        overlay = BrokerOverlay.chain(3)
        with pytest.raises(ValueError):
            overlay.remove_broker(9)
        with pytest.raises(ValueError):
            overlay.remove_broker(0, merge_into=2)  # not a neighbour
        single = BrokerOverlay.chain(1)
        with pytest.raises(ValueError):
            single.remove_broker(0)

    def test_membership_only_surgery_keeps_tables_empty(self, subscriptions):
        overlay = BrokerOverlay.chain(2)
        overlay.attach(1, subscriptions[0])
        joined = overlay.add_broker(1)
        overlay.remove_broker(1, merge_into=joined)
        assert all(len(n.table) == 0 for n in overlay.brokers.values())
        # The re-homed subscription followed its broker's merge.
        assert overlay.subscriptions[0][0] == joined
        assert overlay.brokers[joined].local_subscribers == [0]

    def test_graft_seeds_existing_advertisements(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        before = overlay.advertisement_messages
        joined = overlay.add_broker(2)
        # The newcomer learned the overlay's state over its single link
        # (one message per forwarded instance), and nothing re-flooded.
        node = overlay.brokers[joined]
        assert len(node.table) > 0
        assert overlay.advertisement_messages > before
        assert all(
            destination == ("forward", 2)
            for destination in node.table.destinations()
        )
        stats = overlay.route_corpus(corpus)
        assert stats.precision == 1.0 and stats.recall == 1.0

    def test_split_edge_rekeys_link_state(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        mid = overlay.add_broker(0, split=1)
        assert overlay.brokers[0].neighbors == [mid]
        assert overlay.brokers[1].neighbors == [2, mid]
        assert sorted(overlay.brokers[mid].neighbors) == [0, 1]
        # Both endpoints now route through the newcomer.
        for broker_id in (0, 1):
            table = overlay.brokers[broker_id].table
            assert ("forward", mid) in table.destinations()
        stats = overlay.route_corpus(corpus)
        assert stats.precision == 1.0 and stats.recall == 1.0

    def test_remove_rehomes_subscriptions_and_index(
        self, corpus, subscriptions
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        moved = list(overlay.brokers[1].local_subscribers)
        target = overlay.remove_broker(1, merge_into=2)
        assert target == 2
        node = overlay.brokers[2]
        for subscription_id in moved:
            assert overlay.subscriptions[subscription_id][0] == 2
            assert subscription_id in node.handles
        assert node.local_subscribers == sorted(node.local_subscribers)
        # The adopted patterns joined the target's live index.
        assert len(node.index) == len(node.local_subscribers)

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_join_leave_matches_rebuild_per_subscription(
        self, subscriptions, topology
    ):
        from tests.test_topology_properties import (
            rebuild,
            relabeled_signature,
        )
        from repro.routing.policy import PerSubscriptionPolicy

        overlay = build_overlay(topology, subscriptions)
        overlay.advertise_subscriptions()
        policy = PerSubscriptionPolicy()
        joined = overlay.add_broker(1)
        assert relabeled_signature(overlay) == relabeled_signature(
            rebuild(overlay, policy, None)
        )
        overlay.subscribe(joined, parse_xpath("/a/b/e"))
        overlay.remove_broker(0)
        assert relabeled_signature(overlay) == relabeled_signature(
            rebuild(overlay, policy, None)
        )

    @pytest.mark.parametrize("threshold", [0.3, 0.5, 1.0])
    def test_join_leave_matches_rebuild_community(
        self, corpus, subscriptions, threshold
    ):
        from tests.test_topology_properties import (
            rebuild,
            relabeled_signature,
        )
        from repro.routing.policy import CommunityPolicy

        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=threshold)
        policy = CommunityPolicy(threshold)
        mid = overlay.add_broker(1, split=2)
        overlay.subscribe(mid, parse_xpath("/a/d/e/m"))
        assert relabeled_signature(overlay) == relabeled_signature(
            rebuild(overlay, policy, corpus)
        )
        overlay.remove_broker(1)  # internal broker with subscriptions
        assert relabeled_signature(overlay) == relabeled_signature(
            rebuild(overlay, policy, corpus)
        )
        overlay.remove_broker(mid)
        assert relabeled_signature(overlay) == relabeled_signature(
            rebuild(overlay, policy, corpus)
        )

    def test_incremental_churn_cheaper_than_rebuild(
        self, corpus, subscriptions
    ):
        overlay = build_overlay("chain", subscriptions, n_brokers=6)
        overlay.advertise_communities(corpus, threshold=0.5)
        settled = overlay.advertisement_messages
        joined = overlay.add_broker(5)
        overlay.remove_broker(3)
        incremental = overlay.advertisement_messages - settled
        from tests.test_topology_properties import rebuild
        from repro.routing.policy import CommunityPolicy

        fresh = rebuild(overlay, CommunityPolicy(0.5), corpus)
        assert incremental < fresh.advertisement_messages
        assert joined in overlay.brokers

    def test_attach_only_members_survive_rehoming_unadvertised(
        self, corpus, subscriptions
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        silent = overlay.attach(1, parse_xpath("/a/b"))
        overlay.remove_broker(1, merge_into=0)
        # Membership moved, but the never-advertised member stays out of
        # the target's aggregation (and can still detach cleanly).
        assert overlay.subscriptions[silent][0] == 0
        members = {
            member
            for _, group in overlay.brokers[0].communities
            for member in group
        }
        assert silent not in members
        overlay.unsubscribe(silent)
        assert silent not in overlay.subscriptions

    def test_round_robin_skips_retired_ids(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        overlay.remove_broker(1)
        # Round-robin now rotates over the surviving ids only.
        ids = overlay.attach_round_robin(
            [parse_xpath("/a"), parse_xpath("/a/b")]
        )
        homes = [overlay.subscriptions[i][0] for i in ids]
        assert homes == [0, 2]
        stats = overlay.route_corpus(corpus)
        assert stats.brokers == 2
