"""Multi-broker overlay routing over the Figure 2 corpus."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.routing.overlay import TOPOLOGIES, BrokerOverlay
from repro.xmltree.corpus import DocumentCorpus


@pytest.fixture()
def corpus(figure2_documents):
    return DocumentCorpus(figure2_documents)


@pytest.fixture()
def subscriptions():
    return [
        parse_xpath("/a/b"),
        parse_xpath("/a/b/e"),
        parse_xpath("/a/b/e/k"),
        parse_xpath("/a/d"),
        parse_xpath("/a/d/e/m"),
        parse_xpath("/a"),
    ]


def build_overlay(topology, subscriptions, n_brokers=3):
    overlay = BrokerOverlay.build(topology, n_brokers, seed=7)
    overlay.attach_round_robin(subscriptions)
    return overlay


class TestTopologies:
    def test_chain_degrees(self):
        overlay = BrokerOverlay.chain(4)
        degrees = sorted(node.degree() for node in overlay.brokers.values())
        assert degrees == [1, 1, 2, 2]

    def test_star_hub(self):
        overlay = BrokerOverlay.star(5)
        assert overlay.brokers[0].degree() == 4
        assert all(overlay.brokers[i].degree() == 1 for i in range(1, 5))

    def test_random_tree_is_connected_tree(self):
        overlay = BrokerOverlay.random_tree(12, seed=3)
        total_degree = sum(node.degree() for node in overlay.brokers.values())
        assert total_degree == 2 * 11  # n-1 edges

    def test_random_tree_seed_determinism(self):
        a = BrokerOverlay.random_tree(10, seed=5)
        b = BrokerOverlay.random_tree(10, seed=5)
        assert [n.neighbors for n in a.brokers.values()] == [
            n.neighbors for n in b.brokers.values()
        ]

    def test_single_broker(self):
        overlay = BrokerOverlay.chain(1)
        assert len(overlay.brokers) == 1

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            BrokerOverlay.build("hypercube", 4)

    def test_rejects_non_tree_edge_count(self):
        with pytest.raises(ValueError):
            BrokerOverlay(3, [(0, 1)])

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError):
            BrokerOverlay(4, [(0, 1), (0, 1), (2, 3)])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            BrokerOverlay(2, [(0, 0)])


class TestSubscriptions:
    def test_attach_assigns_sequential_ids(self, subscriptions):
        overlay = BrokerOverlay.chain(2)
        ids = [overlay.attach(0, p) for p in subscriptions]
        assert ids == list(range(len(subscriptions)))

    def test_attach_unknown_broker(self, subscriptions):
        overlay = BrokerOverlay.chain(2)
        with pytest.raises(ValueError):
            overlay.attach(9, subscriptions[0])

    def test_round_robin_spreads_evenly(self, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        sizes = [
            len(node.local_subscribers) for node in overlay.brokers.values()
        ]
        assert sizes == [2, 2, 2]

    def test_route_without_advertisement_raises(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        with pytest.raises(ValueError):
            overlay.route_corpus(corpus)


class TestPerSubscriptionRouting:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_exact_delivery_everywhere(self, corpus, subscriptions, topology):
        overlay = build_overlay(topology, subscriptions)
        overlay.advertise_subscriptions()
        stats = overlay.route_corpus(corpus)
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        assert stats.mode == "per_subscription"

    @pytest.mark.parametrize("publish_at", [0, 1, 2, "round_robin"])
    def test_publish_point_never_affects_delivery(
        self, corpus, subscriptions, publish_at
    ):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        stats = overlay.route_corpus(corpus, publish_at=publish_at)
        assert stats.precision == 1.0
        assert stats.recall == 1.0

    def test_covering_prunes_advertisements(self):
        # Ten identical subscriptions at the end of a long chain: the first
        # advertisement installs state everywhere, the rest die at the
        # first hop, so ads stay far below the no-covering flood.
        overlay = BrokerOverlay.chain(6)
        for _ in range(10):
            overlay.attach(5, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        no_covering_flood = 10 * 5
        assert overlay.advertisement_messages == 5 + 9
        assert overlay.advertisement_messages < no_covering_flood
        # Forward state: one entry per chain link.
        stats_tables = [
            len(overlay.brokers[i].table) for i in range(6)
        ]
        assert stats_tables == [1, 1, 1, 1, 1, 10]

    def test_general_subscription_covers_narrow_ones(self, corpus):
        overlay = BrokerOverlay.chain(3)
        overlay.attach(2, parse_xpath("/a"))
        overlay.attach(2, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        # Brokers 0 and 1 only need the maximal pattern /a per link.
        assert len(overlay.brokers[0].table) == 1
        assert len(overlay.brokers[1].table) == 1
        stats = overlay.route_corpus(corpus)
        assert stats.recall == 1.0
        assert stats.precision == 1.0


class TestCommunityRouting:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_aggregation_shrinks_state_keeps_recall(
        self, corpus, subscriptions, topology
    ):
        overlay = build_overlay(topology, subscriptions)
        overlay.advertise_subscriptions()
        baseline = overlay.route_corpus(corpus)
        overlay.advertise_communities(corpus, threshold=0.5)
        aggregated = overlay.route_corpus(corpus)
        assert aggregated.total_table_entries <= baseline.total_table_entries
        assert aggregated.match_operations <= baseline.match_operations
        assert aggregated.recall >= 0.9

    def test_threshold_one_is_near_exact(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=1.0)
        stats = overlay.route_corpus(corpus)
        # Equivalence-class communities deliver exactly the right documents.
        assert stats.precision == 1.0
        assert stats.recall == 1.0

    def test_communities_recorded_per_broker(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.5)
        communities = [
            community
            for node in overlay.brokers.values()
            for community in node.communities
        ]
        members = sorted(
            subscriber
            for _, group in communities
            for subscriber in group
        )
        assert members == list(range(len(subscriptions)))

    def test_mode_label_carries_threshold(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_communities(corpus, threshold=0.7)
        assert overlay.route_corpus(corpus).mode == "community(threshold=0.7)"


class TestStats:
    def test_flooding_baseline(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        stats = overlay.flooding_stats(corpus)
        assert stats.recall == 1.0
        assert stats.precision < 1.0
        assert stats.match_operations == 0
        assert stats.forwards == len(corpus) * 2

    def test_per_broker_accounting_sums_to_totals(self, corpus, subscriptions):
        overlay = build_overlay("star", subscriptions)
        overlay.advertise_subscriptions()
        stats = overlay.route_corpus(corpus)
        assert sum(stats.match_operations_by_broker.values()) == (
            stats.match_operations
        )
        assert stats.total_table_entries == sum(stats.table_sizes.values())
        assert stats.matches_per_document == pytest.approx(
            stats.match_operations / len(corpus)
        )
        assert stats.forwards_per_document == pytest.approx(
            stats.forwards / len(corpus)
        )

    def test_reset_routing_clears_state(self, corpus, subscriptions):
        overlay = build_overlay("chain", subscriptions)
        overlay.advertise_subscriptions()
        overlay.reset_routing()
        assert overlay.mode is None
        assert all(len(n.table) == 0 for n in overlay.brokers.values())
        with pytest.raises(ValueError):
            overlay.route_corpus(corpus)
