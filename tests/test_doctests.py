"""Execute the doctest examples embedded in public docstrings, so the
documentation cannot drift from the code."""

import doctest

import pytest

import repro.core.labels
import repro.core.pattern_parser
import repro.core.selectivity
import repro.generators.zipf
import repro.synopsis.hashes
import repro.synopsis.reservoir
import repro.xmltree.matcher
import repro.xmltree.tree

MODULES = [
    repro.core.labels,
    repro.core.pattern_parser,
    repro.core.selectivity,
    repro.generators.zipf,
    repro.synopsis.hashes,
    repro.synopsis.reservoir,
    repro.xmltree.matcher,
    repro.xmltree.tree,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
