"""Property suite pinning the merged trie to the per-pattern oracle.

Three layers, each on random workloads:

* **trie vs matcher** — ``PatternTrie.match`` returns exactly the
  patterns the memoised :class:`PatternMatcher` accepts, across add /
  discard churn, with the maintenance invariants (``check()``) audited
  after every mutation;
* **table, both modes** — ``RoutingTable.destinations_for`` answers
  identically in trie and linear mode on the *same* table (both
  structures are always maintained) across add / remove / surgery
  interleavings;
* **overlay sweep** — after subscribe / unsubscribe / join / leave
  churn under all three advertisement policies, every broker table
  agrees across modes, routed delivery equals flat exact matching, and
  every broker trie still passes its invariant audit.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.table import RoutingTable
from repro.routing.trie import PatternTrie
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.matcher import matches
from tests.strategies import property_max_examples, tree_patterns, xml_trees
from tests.test_selectivity_properties import corpora
from tests.test_topology_properties import (
    POLICIES,
    churn,
    flat_delivered,
    seeded_overlay,
)


class TestTrieVersusMatcher:
    @settings(max_examples=property_max_examples(30), deadline=None)
    @given(
        st.lists(tree_patterns(), min_size=1, max_size=8),
        st.lists(xml_trees(), min_size=1, max_size=4),
    )
    def test_match_set_equals_per_pattern_oracle(self, patterns, documents):
        trie = PatternTrie()
        for index, pattern in enumerate(patterns):
            trie.add(pattern, index)
        trie.check()
        for document in documents:
            result = trie.match(document)
            expected = {
                index
                for index, pattern in enumerate(patterns)
                if matches(document, pattern)
            }
            assert result.destinations == expected
            assert result.patterns == {patterns[i] for i in expected}

    @settings(max_examples=property_max_examples(20), deadline=None)
    @given(
        st.lists(tree_patterns(), min_size=2, max_size=8),
        st.lists(xml_trees(), min_size=1, max_size=3),
        st.data(),
    )
    def test_churned_trie_stays_exact_and_consistent(
        self, patterns, documents, data
    ):
        trie = PatternTrie()
        active: list[tuple] = []
        for step in range(data.draw(st.integers(2, 10), label="ops")):
            if active and data.draw(st.booleans(), label=f"discard{step}"):
                registration = data.draw(
                    st.sampled_from(active), label=f"victim{step}"
                )
                active.remove(registration)
                trie.discard(*registration)
            else:
                pattern = data.draw(
                    st.sampled_from(patterns), label=f"pattern{step}"
                )
                destination = data.draw(
                    st.integers(0, 3), label=f"destination{step}"
                )
                if (pattern, destination) in active:
                    continue
                active.append((pattern, destination))
                trie.add(pattern, destination)
            trie.check()
        for document in documents:
            expected = {
                destination
                for pattern, destination in active
                if matches(document, pattern)
            }
            assert trie.match(document).destinations == expected

    @settings(max_examples=property_max_examples(20), deadline=None)
    @given(st.lists(tree_patterns(), min_size=1, max_size=8))
    def test_full_drain_leaves_no_residue(self, patterns):
        trie = PatternTrie()
        for index, pattern in enumerate(patterns):
            trie.add(pattern, index % 3)
        for index, pattern in enumerate(patterns):
            if pattern in trie and (index % 3) in trie.destinations_of(
                pattern
            ):
                trie.discard(pattern, index % 3)
        assert len(trie) == 0
        assert trie.node_count == 0
        assert trie.interned_count == 0
        trie.check()


class TestTableModeEquality:
    @settings(max_examples=property_max_examples(20), deadline=None)
    @given(
        st.lists(tree_patterns(), min_size=1, max_size=6),
        st.lists(xml_trees(), min_size=1, max_size=3),
        st.data(),
    )
    def test_destinations_agree_across_modes_under_churn(
        self, patterns, documents, data
    ):
        table = RoutingTable()
        destinations = ["link-0", "link-1", "link-2"]
        for step in range(data.draw(st.integers(1, 12), label="ops")):
            op = data.draw(
                st.sampled_from(
                    ["add", "add", "add", "remove", "drop", "rename"]
                ),
                label=f"op{step}",
            )
            if op == "add":
                table.add(
                    data.draw(st.sampled_from(patterns), label=f"p{step}"),
                    data.draw(
                        st.sampled_from(destinations), label=f"d{step}"
                    ),
                )
            elif op == "remove":
                destination = data.draw(
                    st.sampled_from(destinations), label=f"d{step}"
                )
                held = table.patterns_for(destination)
                if held:
                    table.remove_pattern(
                        data.draw(st.sampled_from(held), label=f"p{step}"),
                        destination,
                    )
            elif op == "drop":
                table.remove_destination(
                    data.draw(
                        st.sampled_from(destinations), label=f"d{step}"
                    )
                )
            else:
                source = data.draw(
                    st.sampled_from(destinations), label=f"src{step}"
                )
                spare = f"renamed-{step}"
                if table.rename_destination(source, spare):
                    table.rename_destination(spare, source)
            table._trie.check()
            for document in documents:
                via_trie, _ = table.destinations_for(
                    document, matching="trie"
                )
                via_linear, _ = table.destinations_for(
                    document, matching="linear"
                )
                assert via_trie == via_linear, op


class TestOverlaySweep:
    @settings(max_examples=property_max_examples(8), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.sampled_from(["chain", "star", "random_tree"]),
        st.sampled_from([name for name, _ in POLICIES]),
        st.data(),
    )
    def test_trie_equals_per_pattern_across_churn_and_policies(
        self, docs, patterns, topology, policy_name, data
    ):
        corpus = DocumentCorpus(docs)
        policy = dict(POLICIES)[policy_name]()
        provider = corpus if policy.uses_similarity else None
        overlay = seeded_overlay(topology, 3, patterns, policy, provider, data)
        assert overlay.matching == "trie"
        for op in churn(overlay, patterns, data):
            for node in overlay.brokers.values():
                node.table._trie.check()
                for document in corpus.documents:
                    via_trie, _ = node.table.destinations_for(
                        document, matching="trie"
                    )
                    via_linear, _ = node.table.destinations_for(
                        document, matching="linear"
                    )
                    assert via_trie == via_linear, (op, policy_name)
        order = sorted(overlay.brokers)
        for index, document in enumerate(corpus.documents):
            delivered, _, _ = overlay.route(
                document, order[index % len(order)]
            )
            assert delivered == flat_delivered(
                overlay, corpus, document
            ), policy_name
