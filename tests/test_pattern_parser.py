"""XPath-subset parser and serialiser."""

import pytest
from hypothesis import given

from repro.core.labels import DESCENDANT, WILDCARD
from repro.core.pattern_parser import XPathSyntaxError, parse_xpath, to_xpath
from tests.strategies import tree_patterns


class TestParseBasics:
    def test_single_step(self):
        pattern = parse_xpath("/a")
        assert len(pattern.root_children) == 1
        assert pattern.root_children[0].label == "a"
        assert pattern.root_children[0].is_leaf

    def test_child_path(self):
        pattern = parse_xpath("/a/b/c")
        node = pattern.root_children[0]
        assert node.label == "a"
        assert node.children[0].label == "b"
        assert node.children[0].children[0].label == "c"

    def test_leading_descendant(self):
        pattern = parse_xpath("//a")
        top = pattern.root_children[0]
        assert top.label == DESCENDANT
        assert top.children[0].label == "a"

    def test_inner_descendant(self):
        pattern = parse_xpath("/a//b")
        a = pattern.root_children[0]
        assert a.children[0].label == DESCENDANT
        assert a.children[0].children[0].label == "b"

    def test_wildcard_step(self):
        pattern = parse_xpath("/*")
        assert pattern.root_children[0].label == WILDCARD

    def test_wildcard_in_path(self):
        pattern = parse_xpath("/a/*/c")
        assert pattern.root_children[0].children[0].label == WILDCARD

    def test_whitespace_stripped(self):
        assert parse_xpath("  /a ") == parse_xpath("/a")


class TestParsePredicates:
    def test_single_predicate(self):
        pattern = parse_xpath("/a[b]")
        a = pattern.root_children[0]
        assert [c.label for c in a.children] == ["b"]

    def test_multiple_predicates(self):
        pattern = parse_xpath("/a[b][c]")
        a = pattern.root_children[0]
        assert sorted(c.label for c in a.children) == ["b", "c"]

    def test_predicate_with_path(self):
        pattern = parse_xpath("/a[b/c]")
        b = pattern.root_children[0].children[0]
        assert b.label == "b"
        assert b.children[0].label == "c"

    def test_predicate_with_descendant(self):
        pattern = parse_xpath("/a[.//b]")
        desc = pattern.root_children[0].children[0]
        assert desc.label == DESCENDANT
        assert desc.children[0].label == "b"

    def test_predicate_descendant_without_dot(self):
        assert parse_xpath("/a[//b]") == parse_xpath("/a[.//b]")

    def test_predicate_with_self_axis(self):
        assert parse_xpath("/a[./b]") == parse_xpath("/a[b]")

    def test_predicate_then_child_step(self):
        pattern = parse_xpath("/a[b]/c")
        a = pattern.root_children[0]
        assert sorted(c.label for c in a.children) == ["b", "c"]

    def test_nested_predicates(self):
        pattern = parse_xpath("/a[b[c][d]]")
        b = pattern.root_children[0].children[0]
        assert sorted(c.label for c in b.children) == ["c", "d"]

    def test_figure1_pattern_pa(self):
        pattern = parse_xpath("/media/CD/*/last/Mozart")
        assert pattern.size() == 6
        assert pattern.height() == 6

    def test_figure1_pattern_pd(self):
        pattern = parse_xpath("//composer[last/Mozart]")
        top = pattern.root_children[0]
        assert top.label == DESCENDANT
        assert top.children[0].label == "composer"


class TestRootForm:
    def test_multi_constraint_root(self):
        pattern = parse_xpath("/.[a][b]")
        assert sorted(c.label for c in pattern.root_children) == ["a", "b"]

    def test_root_form_with_descendants(self):
        pattern = parse_xpath("/.[.//CD][.//Mozart]")
        labels = [c.label for c in pattern.root_children]
        assert labels == [DESCENDANT, DESCENDANT]

    def test_root_form_requires_predicate(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("/.")


class TestParseErrors:
    @pytest.mark.parametrize(
        "expression",
        [
            "",
            "a",          # must be absolute
            "/",          # missing step
            "//",         # missing step
            "/a[",        # unterminated predicate
            "/a]",        # stray bracket
            "/a[]",       # empty predicate
            "/a//",       # dangling descendant
            "/a/",        # dangling separator
            "/a[b]c",     # trailing garbage
            "/a b",       # space inside name
        ],
    )
    def test_rejects(self, expression):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(expression)


class TestSerialise:
    @pytest.mark.parametrize(
        "expression",
        [
            "/a",
            "//a",
            "/*",
            "/a/b/c",
            "/a//b",
            "/a[b][c]",
            "/a[b/c][d]",
            "/a[.//b][c]",
            "/.[a][.//b]",
            "/media/CD/*/last/Mozart",
            "//composer[last][Mozart]",
        ],
    )
    def test_round_trip(self, expression):
        pattern = parse_xpath(expression)
        assert parse_xpath(to_xpath(pattern)) == pattern

    def test_single_child_is_inlined(self):
        assert to_xpath(parse_xpath("/a[b]")) == "/a/b"

    def test_multi_children_use_predicates(self):
        assert to_xpath(parse_xpath("/a/b[c][d]")) == "/a/b[c][d]"

    def test_descendant_rendering(self):
        assert to_xpath(parse_xpath("//a//b")) == "//a//b"

    def test_root_form_rendering(self):
        rendered = to_xpath(parse_xpath("/.[a][b]"))
        assert rendered.startswith("/.")
        assert parse_xpath(rendered) == parse_xpath("/.[a][b]")

    @given(tree_patterns())
    def test_round_trip_property(self, pattern):
        assert parse_xpath(to_xpath(pattern)) == pattern

    def test_repr_uses_xpath(self):
        assert "/a/b" in repr(parse_xpath("/a/b"))
