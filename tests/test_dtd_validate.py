"""DTD validation: content-model NFA acceptance and generator validity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd.builtin import dblp_dtd, xcbl_dtd
from repro.dtd.parser import parse_dtd
from repro.dtd.validate import validate_tree
from repro.generators.docgen import DocumentGenerator, GeneratorConfig
from repro.xmltree.tree import XMLTree

DTD = parse_dtd(
    """
    <!ELEMENT r (a, b?, (c | d)*, e+)>
    <!ELEMENT a EMPTY>
    <!ELEMENT b EMPTY>
    <!ELEMENT c EMPTY>
    <!ELEMENT d EMPTY>
    <!ELEMENT e (#PCDATA)>
    """
)


def tree_of(*children: str) -> XMLTree:
    return XMLTree.from_nested(("r", list(children)))


class TestContentModels:
    @pytest.mark.parametrize(
        "children",
        [
            ("a", "e"),
            ("a", "b", "e"),
            ("a", "c", "e"),
            ("a", "c", "d", "c", "e"),
            ("a", "b", "d", "e", "e", "e"),
        ],
    )
    def test_accepts_valid_sequences(self, children):
        report = validate_tree(DTD, tree_of(*children))
        assert report.valid, str(report)

    @pytest.mark.parametrize(
        "children",
        [
            (),                      # missing mandatory a and e
            ("a",),                  # missing mandatory e
            ("e",),                  # missing mandatory a
            ("a", "a", "e"),         # a repeated
            ("a", "e", "c"),         # c after e
            ("b", "a", "e"),         # wrong order
        ],
    )
    def test_rejects_invalid_sequences(self, children):
        report = validate_tree(DTD, tree_of(*children))
        assert not report.valid

    def test_wrong_root(self):
        tree = XMLTree.from_nested(("a", []))
        report = validate_tree(DTD, tree)
        assert not report.valid
        assert "root" in str(report)

    def test_undeclared_element(self):
        tree = XMLTree.from_nested(("r", ["a", "zzz", "e"]))
        report = validate_tree(DTD, tree)
        assert any("not declared" in str(e) for e in report.errors)

    def test_empty_element_must_be_leaf(self):
        tree = XMLTree.from_nested(("r", [("a", ["e"]), "e"]))
        report = validate_tree(DTD, tree)
        assert not report.valid

    def test_error_report_renders(self):
        report = validate_tree(DTD, tree_of("e"))
        assert "content model" in str(report)

    def test_max_errors_cap(self):
        tree = XMLTree.from_nested(("r", ["zzz"] * 50))
        report = validate_tree(DTD, tree, max_errors=3)
        assert len(report.errors) == 3


class TestGeneratedDocumentsValidate:
    """The document generator's output is DTD-valid when no size/depth
    truncation occurs."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_xcbl_documents_valid(self, seed):
        config = GeneratorConfig(max_depth=12, max_nodes=100_000)
        doc = DocumentGenerator(xcbl_dtd(), seed=seed, config=config).generate()
        report = validate_tree(xcbl_dtd(), doc)
        assert report.valid, str(report)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_dblp_documents_valid(self, seed):
        config = GeneratorConfig(max_depth=4, max_nodes=100_000)
        doc = DocumentGenerator(dblp_dtd(), seed=seed, config=config).generate()
        report = validate_tree(dblp_dtd(), doc)
        assert report.valid, str(report)

    def test_truncated_document_may_fail(self):
        # Depth truncation cuts mandatory content: validation must notice.
        config = GeneratorConfig(max_depth=2, max_nodes=100_000)
        doc = DocumentGenerator(xcbl_dtd(), seed=1, config=config).generate()
        report = validate_tree(xcbl_dtd(), doc)
        assert not report.valid
