"""Inclusion-forest organisation and routing."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.routing.inclusion import InclusionForest
from repro.xmltree.corpus import DocumentCorpus


@pytest.fixture()
def corpus(figure2_documents):
    return DocumentCorpus(figure2_documents)


class TestForestConstruction:
    def test_chain_nests(self):
        forest = InclusionForest(
            [parse_xpath("/a"), parse_xpath("/a/b"), parse_xpath("/a/b/e")]
        )
        assert forest.n_roots == 1
        assert forest.depth() == 3

    def test_insertion_order_irrelevant_for_chain(self):
        forest = InclusionForest(
            [parse_xpath("/a/b/e"), parse_xpath("/a"), parse_xpath("/a/b")]
        )
        # /a arrives second and must adopt the existing /a/b/e root.
        assert forest.n_roots == 1
        assert forest.depth() >= 2

    def test_unrelated_patterns_stay_roots(self):
        forest = InclusionForest(
            [parse_xpath("/a/b"), parse_xpath("/a/c"), parse_xpath("/a/d")]
        )
        assert forest.n_roots == 3
        assert forest.depth() == 1

    def test_figure1_patterns_do_not_group(self):
        # pa and pd are near-equivalent on the stream but containment sees
        # nothing: both end up as roots (the paper's core criticism).
        pa = parse_xpath("/media/CD/*/last/Mozart")
        pd = parse_xpath("//composer[last/Mozart]")
        forest = InclusionForest([pa, pd])
        assert forest.n_roots == 2

    def test_wildcard_root_covers(self):
        forest = InclusionForest([parse_xpath("/a/b"), parse_xpath("/a/*")])
        assert forest.n_roots == 1

    def test_empty(self):
        forest = InclusionForest([])
        assert forest.n_roots == 0
        assert forest.depth() == 0


class TestForestRouting:
    def test_routing_is_exact(self, corpus):
        subscriptions = [
            parse_xpath("/a"),
            parse_xpath("/a/b"),
            parse_xpath("/a/b/e/k"),
            parse_xpath("/a/d"),
        ]
        forest = InclusionForest(subscriptions)
        stats = forest.route(corpus)
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        expected = sum(len(corpus.match_set(p)) for p in subscriptions)
        assert stats.deliveries == expected

    def test_nesting_saves_match_operations(self, corpus):
        subscriptions = [
            parse_xpath("/a/b"),
            parse_xpath("/a/b/e"),
            parse_xpath("/a/b/e/k"),
            parse_xpath("/a/b/e/m"),
        ]
        forest = InclusionForest(subscriptions)
        stats = forest.route(corpus)
        flat_cost = len(corpus) * len(subscriptions)
        # Documents without /a/b (docs 4-6) are tested once, not four times.
        assert stats.match_operations < flat_cost

    def test_flat_forest_costs_like_flat_matching(self, corpus):
        subscriptions = [parse_xpath("//h"), parse_xpath("//q"), parse_xpath("//p")]
        forest = InclusionForest(subscriptions)
        stats = forest.route(corpus)
        assert stats.match_operations == len(corpus) * len(subscriptions)
