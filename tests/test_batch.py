"""Batched matching: shared memo pools, batch drains, and their stats."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.routing.engine import BatchServiceModel, DeliveryEngine, ServiceModel
from repro.routing.overlay import BrokerOverlay
from repro.routing.table import RoutingTable, TableBatchMatch
from repro.routing.trie import PatternTrie
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.parser import parse_xml


def doc(xml: str, doc_id: int = 0):
    return parse_xml(xml, doc_id=doc_id)


@pytest.fixture()
def documents():
    return [
        doc("<a><b><e/></b></a>", 0),
        doc("<a><d><e/></d></a>", 1),
        doc("<q><r/></q>", 2),
    ]


@pytest.fixture()
def trie():
    built = PatternTrie()
    built.add(parse_xpath("/a/b"), "link-1")
    built.add(parse_xpath("/a//e"), "link-2")
    built.add(parse_xpath("//e"), "link-3")
    return built


class TestMatchBatch:
    def test_batch_equals_single_matches(self, trie, documents):
        batch = trie.match_batch(documents)
        singles = [trie.match(document) for document in documents]
        assert [r.destinations for r in batch.results] == [
            s.destinations for s in singles
        ]
        assert [r.patterns for r in batch.results] == [
            s.patterns for s in singles
        ]

    def test_attributed_operations_sum_to_total(self, trie, documents):
        batch = trie.match_batch(documents)
        assert batch.operations == sum(r.operations for r in batch.results)
        assert batch.operations > 0

    def test_batched_ops_never_exceed_sequential(self, trie, documents):
        batch = trie.match_batch(documents)
        sequential = sum(trie.match(d).operations for d in documents)
        assert batch.operations <= sequential

    def test_repeated_document_is_free(self, trie, documents):
        repeated = documents[0]
        batch = trie.match_batch([repeated, repeated, repeated])
        # The whole-document memo answers the second and third copies.
        assert batch.results[1].operations == 0
        assert batch.results[2].operations == 0
        assert batch.results[0].operations > 0
        assert batch.hit_rate > 0.0
        assert batch.results[0].destinations == batch.results[1].destinations

    def test_structurally_equal_documents_share(self, trie):
        # Distinct objects, identical shape: skeleton keys coincide.
        batch = trie.match_batch(
            [doc("<a><b><e/></b></a>", 0), doc("<a><b><e/></b></a>", 1)]
        )
        assert batch.results[1].operations == 0
        assert batch.memo_hits > 0

    def test_empty_batch_and_empty_trie(self, trie, documents):
        empty_batch = trie.match_batch([])
        assert empty_batch.results == []
        assert empty_batch.operations == 0
        assert empty_batch.hit_rate == 0.0
        empty_trie = PatternTrie()
        batch = empty_trie.match_batch(documents)
        assert all(not r.destinations for r in batch.results)
        assert batch.operations == 0


class TestTableBatch:
    def test_batch_equals_sequential_lists(self, documents):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("//e"), "link-2")
        table.add(parse_xpath("/a"), "link-3")
        expected = [table.destinations_for(d)[0] for d in documents]
        batch = table.destinations_for_batch(documents)
        assert batch.destinations == expected

    def test_linear_mode_has_no_sharing(self, documents):
        table = RoutingTable(matching="linear")
        table.add(parse_xpath("/a/b"), "link-1")
        batch = table.destinations_for_batch(documents)
        assert batch.memo_hits == 0 and batch.memo_misses == 0
        assert batch.total_operations == sum(batch.operations)

    def test_excludes_are_per_document(self, documents):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        table.add(parse_xpath("/a"), "link-2")
        batch = table.destinations_for_batch(
            documents[:2], excludes=[("link-1",), ()]
        )
        assert batch.destinations[0] == ["link-2"]
        assert batch.destinations[1] == ["link-1", "link-2"]

    def test_excludes_length_mismatch_rejected(self, documents):
        table = RoutingTable()
        with pytest.raises(ValueError):
            table.destinations_for_batch(documents, excludes=[()])

    def test_stats_fields(self):
        stats = TableBatchMatch([["x"], []], [3, 1], memo_hits=2, memo_misses=6)
        assert stats.total_operations == 4
        assert stats.hit_rate == 0.25
        assert TableBatchMatch([], []).hit_rate == 0.0

    def test_batch_feeds_match_operations_counter(self, documents):
        table = RoutingTable()
        table.add(parse_xpath("//e"), "link-1")
        batch = table.destinations_for_batch(documents)
        assert table.match_operations == batch.total_operations


class TestOverlayBatch:
    def test_process_batch_equals_per_document_steps(self, documents):
        overlay = BrokerOverlay.chain(3)
        overlay.attach(0, parse_xpath("/a/b"))
        overlay.attach(1, parse_xpath("//e"))
        overlay.attach(2, parse_xpath("/q"))
        overlay.advertise_subscriptions()
        for broker_id in overlay.brokers:
            expected = [
                overlay.process_at(broker_id, document)
                for document in documents
            ]
            steps = overlay.process_batch_at(broker_id, documents)
            assert [
                (s.deliveries, s.forwards) for s in steps
            ] == [(s.deliveries, s.forwards) for s in expected]

    def test_origin_excludes_reverse_link(self, documents):
        overlay = BrokerOverlay.chain(2)
        overlay.attach(1, parse_xpath("//e"))
        overlay.advertise_subscriptions()
        # Arriving over the 0-1 link must not be forwarded back.
        steps = overlay.process_batch_at(
            1, documents[:2], arrived_from=[0, None]
        )
        assert all(not step.forwards for step in steps)

    def test_origins_length_mismatch_rejected(self, documents):
        overlay = BrokerOverlay.chain(2)
        with pytest.raises(ValueError):
            overlay.process_batch_at(0, documents, arrived_from=[None])
        with pytest.raises(ValueError):
            overlay.process_batch_at(99, documents)


class TestBatchServiceModel:
    def test_batch_service_time_shape(self):
        model = BatchServiceModel(
            base=1.0, per_match=0.1, per_doc=0.5, max_batch=4
        )
        assert model.service_time_batch(10, 3) == pytest.approx(3.5)
        # A batch of one is the plain affine model plus per_doc.
        assert model.service_time(10) == pytest.approx(2.5)

    def test_rejects_bad_coefficients(self):
        with pytest.raises(ValueError):
            BatchServiceModel(per_doc=-0.1)
        with pytest.raises(ValueError):
            BatchServiceModel(base=0.0, per_match=0.0, per_doc=0.0)
        with pytest.raises(ValueError):
            BatchServiceModel(max_batch=0)


def saturated_engine(service):
    """A one-broker overlay fed faster than it drains."""
    overlay = BrokerOverlay.chain(1)
    overlay.attach(0, parse_xpath("/a"))
    overlay.advertise_subscriptions()
    corpus = DocumentCorpus(
        [doc("<a><b/></a>", doc_id) for doc_id in range(12)]
    )
    engine = DeliveryEngine(overlay, service=service)
    engine.publish_corpus(corpus, rate=100.0)
    return engine


class TestBatchedEngine:
    def test_saturation_forms_batches(self):
        engine = saturated_engine(
            BatchServiceModel(base=1.0, per_match=0.01, max_batch=4)
        )
        stats = engine.run()
        assert stats.serviced_documents == 12
        assert stats.service_batches < 12
        assert 1.0 < stats.mean_batch_size <= 4.0
        assert stats.deliveries == 12

    def test_max_batch_one_still_counts_batches(self):
        engine = saturated_engine(
            BatchServiceModel(base=1.0, per_match=0.01, max_batch=1)
        )
        stats = engine.run()
        assert stats.service_batches == 12
        assert stats.mean_batch_size == 1.0

    def test_affine_model_reports_unbatched_stats(self):
        engine = saturated_engine(ServiceModel(base=1.0, per_match=0.01))
        stats = engine.run()
        assert stats.service_batches == 12
        assert stats.serviced_documents == 12
        assert stats.mean_batch_size == 1.0

    def test_batched_delivery_equals_unbatched(self):
        unbatched = saturated_engine(ServiceModel(base=1.0, per_match=0.01))
        unbatched.run()
        batched = saturated_engine(
            BatchServiceModel(base=1.0, per_match=0.01, max_batch=4)
        )
        batched.run()
        assert batched.delivered_sets() == unbatched.delivered_sets()

    def test_idle_stats_batch_size_zero(self):
        overlay = BrokerOverlay.chain(1)
        overlay.attach(0, parse_xpath("/a"))
        overlay.advertise_subscriptions()
        engine = DeliveryEngine(
            overlay, service=BatchServiceModel(max_batch=2)
        )
        stats = engine.run()
        assert stats.service_batches == 0
        assert stats.mean_batch_size == 0.0
