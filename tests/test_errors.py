"""Error metrics of Section 5.1: Erel and Esqr."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import (
    ErrorSummary,
    average_relative_error,
    root_mean_square_error,
)


class TestAverageRelativeError:
    def test_perfect_estimates(self):
        summary = average_relative_error([0.5, 0.2], [0.5, 0.2])
        assert summary.value == 0.0
        assert summary.used == 2
        assert summary.skipped == 0

    def test_single_error(self):
        summary = average_relative_error([0.5], [0.25])
        assert summary.value == pytest.approx(0.5)

    def test_average_over_entries(self):
        summary = average_relative_error([1.0, 0.5], [0.5, 0.5])
        assert summary.value == pytest.approx(0.25)

    def test_zero_truth_skipped(self):
        summary = average_relative_error([0.0, 0.5], [0.3, 0.5])
        assert summary.used == 1
        assert summary.skipped == 1
        assert summary.value == 0.0

    def test_all_skipped(self):
        summary = average_relative_error([0.0], [0.1])
        assert summary.value == 0.0
        assert summary.used == 0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            average_relative_error([1.0], [1.0, 2.0])

    def test_percent(self):
        assert average_relative_error([1.0], [1.5]).percent == pytest.approx(50.0)

    def test_overestimates_and_underestimates_count_alike(self):
        over = average_relative_error([1.0], [1.5])
        under = average_relative_error([1.0], [0.5])
        assert over.value == pytest.approx(under.value)


class TestRootMeanSquareError:
    def test_perfect(self):
        assert root_mean_square_error([0.0, 0.0], [0.0, 0.0]).value == 0.0

    def test_known_value(self):
        summary = root_mean_square_error([0.0, 0.0], [0.3, 0.4])
        assert summary.value == pytest.approx(math.sqrt(0.125))

    def test_empty(self):
        assert root_mean_square_error([], []).value == 0.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            root_mean_square_error([0.0], [])

    def test_log10(self):
        summary = root_mean_square_error([0.0], [0.01])
        assert summary.log10 == pytest.approx(-2.0)

    def test_log10_of_zero(self):
        assert root_mean_square_error([0.0], [0.0]).log10 == float("-inf")


class TestErrorSummary:
    def test_float_conversion(self):
        assert float(ErrorSummary(value=0.25, used=4)) == 0.25

    def test_frozen(self):
        summary = ErrorSummary(value=0.1, used=1)
        with pytest.raises(Exception):
            summary.value = 0.2


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(0.01, 1.0),
                st.floats(0.0, 1.0),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_erel_nonnegative(self, pairs):
        exact = [a for a, _ in pairs]
        estimated = [b for _, b in pairs]
        assert average_relative_error(exact, estimated).value >= 0.0

    @given(
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50),
    )
    def test_esqr_zero_iff_exact(self, values)  :
        summary = root_mean_square_error(values, values)
        assert summary.value == 0.0

    @given(
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50),
    )
    def test_esqr_bounded_by_max_deviation(self, estimates):
        exact = [0.0] * len(estimates)
        summary = root_mean_square_error(exact, estimates)
        assert summary.value <= max(estimates) + 1e-12
