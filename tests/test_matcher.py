"""Exact tree-pattern matching: the paper's Figure 1 cases and the Section 2
semantics edge cases."""


from repro.core.pattern_parser import parse_xpath
from repro.xmltree.matcher import CompiledPattern, PatternMatcher, matches
from repro.xmltree.tree import XMLTree


class TestFigure1:
    """The worked example: patterns pa..pd against document T."""

    def test_pa_matches(self, figure1_document):
        assert matches(figure1_document, parse_xpath("/media/CD/*/last/Mozart"))

    def test_pb_does_not_match(self, figure1_document):
        # "Mozart" has no *parent* labeled CD: it is two levels deeper.
        assert not matches(figure1_document, parse_xpath("//CD/Mozart"))

    def test_pc_matches(self, figure1_document):
        assert matches(figure1_document, parse_xpath("/.[.//CD][.//Mozart]"))

    def test_pd_matches(self, figure1_document):
        assert matches(figure1_document, parse_xpath("//composer[last/Mozart]"))

    def test_book_title(self, figure1_document):
        assert matches(figure1_document, parse_xpath("/media/book/title/Hamlet"))

    def test_wrong_root(self, figure1_document):
        assert not matches(figure1_document, parse_xpath("/CD"))


class TestRootSemantics:
    """Pattern-root children constrain the document root node itself."""

    def test_tag_child_requires_root_tag(self):
        tree = XMLTree.from_nested(("a", ["b"]))
        assert matches(tree, parse_xpath("/a"))
        assert not matches(tree, parse_xpath("/b"))

    def test_wildcard_child_matches_any_root(self):
        tree = XMLTree.from_nested(("whatever", ["b"]))
        assert matches(tree, parse_xpath("/*"))
        assert matches(tree, parse_xpath("/*/b"))

    def test_descendant_child_may_anchor_at_root(self):
        tree = XMLTree.from_nested(("a", ["b"]))
        assert matches(tree, parse_xpath("//a"))

    def test_descendant_child_may_anchor_deep(self):
        tree = XMLTree.from_nested(("x", [("y", ["a"])]))
        assert matches(tree, parse_xpath("//a"))

    def test_multi_constraint_root_is_conjunction(self):
        tree = XMLTree.from_nested(("a", ["b", "c"]))
        assert matches(tree, parse_xpath("/.[a/b][a/c]"))
        assert not matches(tree, parse_xpath("/.[a/b][a/z]"))


class TestChildSemantics:
    def test_tag_requires_child_not_descendant(self):
        tree = XMLTree.from_nested(("a", [("x", ["b"])]))
        assert not matches(tree, parse_xpath("/a/b"))
        assert matches(tree, parse_xpath("/a/x/b"))

    def test_branching_requires_one_node_satisfying_all(self):
        # a has two b-children; one has c, the other d.  /a/b[c][d] needs a
        # single b with both — false here.
        tree = XMLTree.from_nested(("a", [("b", ["c"]), ("b", ["d"])]))
        assert not matches(tree, parse_xpath("/a/b[c][d]"))
        assert matches(tree, parse_xpath("/.[a/b/c][a/b/d]"))

    def test_branching_satisfied_on_one_node(self):
        tree = XMLTree.from_nested(("a", [("b", ["c", "d"])]))
        assert matches(tree, parse_xpath("/a/b[c][d]"))

    def test_wildcard_child(self):
        tree = XMLTree.from_nested(("a", [("x", ["c"])]))
        assert matches(tree, parse_xpath("/a/*/c"))
        assert not matches(tree, parse_xpath("/a/*/z"))


class TestDescendantSemantics:
    def test_zero_length_descendant(self):
        # a//b matches when b is a direct child of a (t' = t case).
        tree = XMLTree.from_nested(("a", ["b"]))
        assert matches(tree, parse_xpath("/a//b"))

    def test_deep_descendant(self):
        tree = XMLTree.from_nested(("a", [("x", [("y", ["b"])])]))
        assert matches(tree, parse_xpath("/a//b"))

    def test_descendant_branch(self):
        tree = XMLTree.from_nested(("a", [("x", ["c", "d"])]))
        assert matches(tree, parse_xpath("/a//x[c][d]"))

    def test_descendant_branch_split_fails(self):
        tree = XMLTree.from_nested(("a", [("x", ["c"]), ("x", ["d"])]))
        assert not matches(tree, parse_xpath("/a//x[c][d]"))

    def test_descendant_under_wildcard(self):
        tree = XMLTree.from_nested(("a", [("p", [("q", ["b"])])]))
        assert matches(tree, parse_xpath("/a/*//b"))

    def test_double_descendant(self):
        tree = XMLTree.from_nested(("a", [("x", [("b", [("y", ["c"])])])]))
        assert matches(tree, parse_xpath("/a//b//c"))

    def test_descendant_no_match(self):
        tree = XMLTree.from_nested(("a", ["b"]))
        assert not matches(tree, parse_xpath("/a//z"))


class TestMatcherMechanics:
    def test_required_tags_prefilter(self):
        compiled = CompiledPattern(parse_xpath("/a[.//b]/*"))
        assert compiled.required_tags == {"a", "b"}

    def test_prefilter_rejects_missing_tag(self):
        matcher = PatternMatcher(parse_xpath("/a/zz"))
        assert not matcher.matches(XMLTree.from_nested(("a", ["b"])))

    def test_matcher_reusable_across_documents(self):
        matcher = PatternMatcher(parse_xpath("/a/b"))
        assert matcher.matches(XMLTree.from_nested(("a", ["b"])))
        assert not matcher.matches(XMLTree.from_nested(("a", ["c"])))
        assert matcher.matches(XMLTree.from_nested(("a", ["c", "b"])))

    def test_accepts_precompiled(self):
        compiled = CompiledPattern(parse_xpath("/a"))
        assert PatternMatcher(compiled).matches(XMLTree.from_nested("a"))

    def test_single_node_document_and_pattern(self):
        assert matches(XMLTree.from_nested("a"), parse_xpath("/a"))
        assert matches(XMLTree.from_nested("a"), parse_xpath("//a"))
        assert not matches(XMLTree.from_nested("a"), parse_xpath("/a/b"))
