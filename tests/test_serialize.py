"""Synopsis serialisation round trips for all modes and pruned structures."""

import json

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.core.selectivity import SelectivityEstimator
from repro.synopsis.compression import compress_to_ratio
from repro.synopsis.serialize import (
    dump_synopsis,
    load_synopsis,
    synopsis_from_dict,
    synopsis_to_dict,
)
from repro.synopsis.size import measure
from repro.synopsis.synopsis import DocumentSynopsis
from repro.xmltree.tree import XMLTree

PATTERNS = ["/a", "/a/b", "/a[b][d]", "//e", "/a/c/f/o", "//e[k][m]"]


def assert_estimates_equal(first, second):
    est_a = SelectivityEstimator(first)
    est_b = SelectivityEstimator(second)
    for expression in PATTERNS:
        pattern = parse_xpath(expression)
        assert est_a.selectivity(pattern) == pytest.approx(
            est_b.selectivity(pattern)
        ), expression


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["counters", "sets", "hashes"])
    def test_round_trip_preserves_estimates(self, figure2_synopsis_factory, mode):
        original = figure2_synopsis_factory(mode=mode)
        restored = synopsis_from_dict(synopsis_to_dict(original))
        assert restored.mode == original.mode
        assert restored.n_documents == original.n_documents
        assert measure(restored).total == measure(original).total
        assert_estimates_equal(original, restored)

    def test_json_compatible(self, figure2_synopsis_factory):
        data = synopsis_to_dict(figure2_synopsis_factory(mode="hashes"))
        json.dumps(data)  # must not raise

    def test_round_trip_compressed_synopsis(self, figure2_synopsis_factory):
        original = figure2_synopsis_factory(mode="hashes")
        compress_to_ratio(original, 0.6)
        restored = synopsis_from_dict(synopsis_to_dict(original))
        assert measure(restored).total == measure(original).total
        assert_estimates_equal(original, restored)

    def test_round_trip_preserves_folded_labels(self, figure2_synopsis_factory):
        from repro.synopsis.pruning import fold_leaves

        original = figure2_synopsis_factory(mode="sets")
        fold_leaves(original, lossless_only=True)
        restored = synopsis_from_dict(synopsis_to_dict(original))
        original_labels = sorted(
            node.label.render() for node in original.iter_nodes()
        )
        restored_labels = sorted(
            node.label.render() for node in restored.iter_nodes()
        )
        assert original_labels == restored_labels

    def test_round_trip_preserves_dag(self):
        from repro.synopsis.pruning import merge_same_label

        original = DocumentSynopsis(mode="sets", capacity=10)
        original.insert_document(
            XMLTree.from_nested(("a", [("b", ["x"]), ("c", ["x"])]), doc_id=0)
        )
        merge_same_label(original, min_similarity=0.0)
        restored = synopsis_from_dict(synopsis_to_dict(original))
        assert restored.n_nodes == original.n_nodes
        assert measure(restored).edges == measure(original).edges

    def test_continue_inserting_after_restore(self, figure2_synopsis_factory):
        restored = synopsis_from_dict(
            synopsis_to_dict(figure2_synopsis_factory(mode="hashes"))
        )
        before = restored.n_documents
        restored.insert_document(XMLTree.from_nested(("a", [("b", ["e"])])))
        assert restored.n_documents == before + 1
        estimator = SelectivityEstimator(restored)
        assert estimator.selectivity(parse_xpath("/a")) == pytest.approx(1.0)

    def test_sets_mode_reservoir_restored(self, figure2_synopsis_factory):
        original = figure2_synopsis_factory(mode="sets")
        restored = synopsis_from_dict(synopsis_to_dict(original))
        assert restored.reservoir is not None
        assert sorted(restored.reservoir.members()) == [1, 2, 3, 4, 5, 6]
        assert restored.reservoir.seen == 6


class TestFileIO:
    def test_dump_and_load(self, figure2_synopsis_factory, tmp_path):
        original = figure2_synopsis_factory(mode="hashes")
        path = tmp_path / "synopsis.json"
        dump_synopsis(original, str(path))
        restored = load_synopsis(str(path))
        assert_estimates_equal(original, restored)


class TestFormatGuards:
    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            synopsis_from_dict({"format": "something-else"})

    def test_rejects_future_version(self, figure2_synopsis_factory):
        data = synopsis_to_dict(figure2_synopsis_factory())
        data["version"] = 99
        with pytest.raises(ValueError):
            synopsis_from_dict(data)
