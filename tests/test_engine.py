"""The discrete-event delivery engine: models, scheduling, and stats."""

from dataclasses import dataclass

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.routing.broker import ClassLatency, ordered_percentile, percentile
from repro.routing.engine import DeliveryEngine, LinkModel, ServiceModel
from repro.routing.overlay import BrokerOverlay
from repro.routing.policy import (
    DeadlineScheduling,
    FifoScheduling,
    PriorityScheduling,
    SchedulingPolicy,
)
from repro.xmltree.parser import parse_xml


def doc(xml: str, doc_id: int = 0):
    return parse_xml(xml, doc_id=doc_id)


@pytest.fixture()
def chain3():
    """0 — 1 — 2 with one subscriber per broker, all wanting /a/b."""
    overlay = BrokerOverlay.chain(3)
    for broker_id in range(3):
        overlay.attach(broker_id, parse_xpath("/a/b"))
    overlay.advertise_subscriptions()
    return overlay


class TestServiceModel:
    def test_affine_in_match_operations(self):
        model = ServiceModel(base=0.5, per_match=0.25)
        assert model.service_time(0) == 0.5
        assert model.service_time(4) == 1.5

    def test_rejects_negative_and_zero_models(self):
        with pytest.raises(ValueError):
            ServiceModel(base=-1.0)
        with pytest.raises(ValueError):
            ServiceModel(base=0.0, per_match=-0.1)
        with pytest.raises(ValueError):
            ServiceModel(base=0.0, per_match=0.0)


class TestLinkModel:
    def test_default_and_overrides_are_undirected(self):
        links = LinkModel(default=2.0, overrides={(3, 1): 5.0})
        assert links.latency(0, 1) == 2.0
        assert links.latency(1, 3) == 5.0
        assert links.latency(3, 1) == 5.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LinkModel(default=-1.0)
        with pytest.raises(ValueError):
            LinkModel(overrides={(0, 1): -0.5})


class TestPercentile:
    def test_nearest_rank(self):
        samples = [4.0, 1.0, 3.0, 2.0]
        assert percentile(samples, 50.0) == 2.0
        assert percentile(samples, 100.0) == 4.0
        assert percentile(samples, 1.0) == 1.0

    def test_empty_and_bounds(self):
        assert percentile([], 95.0) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_ordered_percentile_empty_and_bounds(self):
        assert ordered_percentile([], 95.0) == 0.0
        with pytest.raises(ValueError):
            ordered_percentile([1.0], -1.0)

    @pytest.mark.parametrize(
        "samples",
        [
            [4.0, 1.0, 3.0, 2.0],
            [0.5],
            [2.0, 2.0, 2.0, 1.0, 9.5, 0.25],
            [float(n % 7) * 0.3 for n in range(100)],
        ],
    )
    def test_sort_once_digests_byte_identical(self, samples):
        # The sort-once path must reproduce the per-call-sort results
        # exactly — same floats, not approximately.
        ordered = sorted(samples)
        for q in (0.0, 1.0, 50.0, 95.0, 99.0, 100.0):
            assert ordered_percentile(ordered, q) == percentile(samples, q)
        digest = ClassLatency.of(samples)
        assert digest == ClassLatency(
            deliveries=len(samples),
            p50=percentile(samples, 50.0),
            p95=percentile(samples, 95.0),
            p99=percentile(samples, 99.0),
            mean=sum(samples) / len(samples),
            max=max(samples),
        )


class TestEngineBasics:
    def test_requires_routing_state(self):
        overlay = BrokerOverlay.chain(2)
        with pytest.raises(ValueError):
            DeliveryEngine(overlay)

    def test_rejects_unknown_broker_and_negative_time(self, chain3):
        engine = DeliveryEngine(chain3)
        with pytest.raises(ValueError):
            engine.publish(doc("<a><b/></a>"), at_broker=9)
        with pytest.raises(ValueError):
            engine.publish(doc("<a><b/></a>"), time=-1.0)

    def test_single_document_timing(self, chain3):
        # Service 1.0 everywhere (no per-match cost), links 0.5: the home
        # subscriber hears at 1.0, broker 1's at 1.0 + 0.5 + 1.0, broker
        # 2's one more hop later.
        engine = DeliveryEngine(
            chain3,
            service=ServiceModel(base=1.0, per_match=0.0),
            links=LinkModel(default=0.5),
        )
        engine.publish(doc("<a><b/></a>"), at_broker=0, time=0.0)
        stats = engine.run()
        assert engine.delivered_sets() == {0: frozenset({0, 1, 2})}
        assert sorted(engine._latencies) == [1.0, 2.5, 4.0]
        assert stats.latency_max == 4.0
        assert stats.makespan == 4.0
        assert stats.deliveries == 3
        assert stats.forwards == 2
        assert stats.queue_delay_max == 0.0

    def test_fifo_queueing_delay(self, chain3):
        # Two back-to-back publishes at one broker: the second waits for
        # the first's full service.
        engine = DeliveryEngine(
            chain3,
            service=ServiceModel(base=1.0, per_match=0.0),
            links=LinkModel(default=0.0),
        )
        engine.publish(doc("<a><b/></a>", 0), at_broker=0, time=0.0)
        engine.publish(doc("<a><b/></a>", 1), at_broker=0, time=0.0)
        stats = engine.run()
        # Broker 0 held both documents at once; the second queued 1.0.
        assert stats.queue_depth_peaks[0] == 2
        assert stats.queue_delay_max == 1.0
        assert stats.busy_time[0] == 2.0

    def test_stats_on_idle_engine(self, chain3):
        stats = DeliveryEngine(chain3).run()
        assert stats.documents == 0
        assert stats.deliveries == 0
        assert stats.makespan == 0.0
        assert stats.throughput == 0.0
        assert stats.peak_queue_depth == 0

    def test_utilization_and_throughput(self, chain3):
        engine = DeliveryEngine(
            chain3,
            service=ServiceModel(base=1.0, per_match=0.0),
            links=LinkModel(default=0.0),
        )
        engine.publish(doc("<a><b/></a>"), at_broker=1, time=0.0)
        stats = engine.run()
        # One service each at brokers 1, 0 and 2; makespan 2.0 (hub first,
        # both leaves in parallel).
        assert stats.makespan == 2.0
        assert stats.throughput == 0.5
        assert stats.utilization[1] == 0.5

    def test_incremental_runs_accumulate(self, chain3):
        engine = DeliveryEngine(
            chain3, service=ServiceModel(base=1.0, per_match=0.0)
        )
        engine.publish(doc("<a><b/></a>", 0), at_broker=0, time=0.0)
        engine.run()
        engine.publish(doc("<a><b/></a>", 1), at_broker=0, time=100.0)
        stats = engine.run()
        assert stats.documents == 2
        assert set(engine.delivered_sets()) == {0, 1}


class TestSchedulingPolicies:
    """The engine under non-FIFO queue disciplines."""

    @pytest.fixture()
    def single_broker(self):
        """One broker, one subscriber: every publish queues at broker 0."""
        overlay = BrokerOverlay.chain(1)
        overlay.attach(0, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        return overlay

    def publish_three(self, engine):
        """Three same-instant publishes with classes 0, 2, 1."""
        for index, priority_class in enumerate((0, 2, 1)):
            engine.publish(
                doc("<a><b/></a>", index),
                at_broker=0,
                time=0.0,
                priority_class=priority_class,
                deadline=10.0 - priority_class,
            )

    def completion_order(self, engine):
        engine.run()
        stats = engine.stats()
        order = sorted(
            (digest.p50, priority_class)
            for priority_class, digest in stats.latency_by_class.items()
        )
        return [priority_class for _, priority_class in order]

    def test_default_scheduling_is_fifo(self, single_broker):
        engine = DeliveryEngine(single_broker)
        assert isinstance(engine.scheduling, FifoScheduling)

    def test_string_spelling_accepted(self, single_broker):
        engine = DeliveryEngine(single_broker, scheduling="priority")
        assert isinstance(engine.scheduling, PriorityScheduling)

    def test_fifo_services_in_arrival_order(self, single_broker):
        engine = DeliveryEngine(
            single_broker, service=ServiceModel(base=1.0, per_match=0.0)
        )
        self.publish_three(engine)
        # Arrival order 0, 2, 1 — FIFO keeps it.
        assert self.completion_order(engine) == [0, 2, 1]

    def test_priority_services_heaviest_class_first(self, single_broker):
        engine = DeliveryEngine(
            single_broker,
            service=ServiceModel(base=1.0, per_match=0.0),
            scheduling=PriorityScheduling(),
        )
        self.publish_three(engine)
        # The first arrival is already in service; the queue drains by
        # class weight afterwards.
        assert self.completion_order(engine) == [0, 2, 1]
        engine = DeliveryEngine(
            single_broker,
            service=ServiceModel(base=1.0, per_match=0.0),
            scheduling=PriorityScheduling({0: 5.0, 1: 1.0, 2: 0.5}),
        )
        self.publish_three(engine)
        assert self.completion_order(engine) == [0, 1, 2]

    def test_deadline_services_most_urgent_first(self, single_broker):
        engine = DeliveryEngine(
            single_broker,
            service=ServiceModel(base=1.0, per_match=0.0),
            scheduling=DeadlineScheduling(),
        )
        # Deadlines 10-class: class 2 is most urgent after the head.
        self.publish_three(engine)
        assert self.completion_order(engine) == [0, 2, 1]

    def test_per_class_latency_stats(self, single_broker):
        engine = DeliveryEngine(
            single_broker, service=ServiceModel(base=1.0, per_match=0.0)
        )
        self.publish_three(engine)
        stats = engine.run()
        assert sorted(stats.latency_by_class) == [0, 1, 2]
        assert all(
            digest.deliveries == 1
            for digest in stats.latency_by_class.values()
        )
        assert stats.latency_by_class[0].p50 == 1.0

    def test_classless_run_reports_class_zero(self, single_broker):
        engine = DeliveryEngine(single_broker)
        engine.publish(doc("<a><b/></a>"), at_broker=0)
        stats = engine.run()
        assert list(stats.latency_by_class) == [0]
        assert stats.latency_by_class[0].deliveries == stats.deliveries

    def test_forwarded_jobs_inherit_class(self, chain3):
        engine = DeliveryEngine(chain3)
        engine.publish(doc("<a><b/></a>"), at_broker=0, priority_class=7)
        stats = engine.run()
        # All three brokers' subscribers hear under the publish class.
        assert list(stats.latency_by_class) == [7]
        assert stats.latency_by_class[7].deliveries == 3

    def test_publish_rejects_deadline_before_publish(self, single_broker):
        engine = DeliveryEngine(single_broker)
        with pytest.raises(ValueError):
            engine.publish(doc("<a><b/></a>"), time=5.0, deadline=4.0)

    def test_publish_corpus_class_assignment(self, single_broker):
        from repro.xmltree.corpus import DocumentCorpus

        corpus = DocumentCorpus(
            [doc("<a><b/></a>", index) for index in range(5)]
        )
        engine = DeliveryEngine(single_broker)
        engine.publish_corpus(corpus, rate=1.0, classes=(0, 1))
        stats = engine.run()
        assert stats.latency_by_class[0].deliveries == 3
        assert stats.latency_by_class[1].deliveries == 2
        engine = DeliveryEngine(single_broker)
        engine.publish_corpus(
            corpus, rate=1.0, classes=lambda position: position % 3
        )
        stats = engine.run()
        assert sorted(stats.latency_by_class) == [0, 1, 2]
        engine = DeliveryEngine(single_broker)
        with pytest.raises(ValueError):
            engine.publish_corpus(corpus, rate=1.0, classes=())
        with pytest.raises(ValueError):
            engine.publish_corpus(corpus, rate=1.0, deadline_slack=-1.0)

    def test_malformed_policy_selection_rejected(self, single_broker):
        @dataclass(frozen=True)
        class Broken(SchedulingPolicy):
            def select(self, queue, now):
                return len(queue)

        engine = DeliveryEngine(
            single_broker,
            service=ServiceModel(base=1.0, per_match=0.0),
            scheduling=Broken(),
        )
        self.publish_three(engine)
        with pytest.raises(ValueError):
            engine.run()


class TestDeterminism:
    def test_identical_runs_bit_for_bit(self, chain3):
        outcomes = []
        for _ in range(2):
            engine = DeliveryEngine(chain3)
            for index in range(8):
                engine.publish(
                    doc("<a><b/></a>", index),
                    at_broker=index % 3,
                    time=0.25 * index,
                )
            outcomes.append((engine.run(), engine.delivered_sets()))
        assert outcomes[0] == outcomes[1]

    def test_poisson_arrivals_are_seeded(self, chain3):
        from repro.xmltree.corpus import DocumentCorpus

        corpus = DocumentCorpus(
            [doc("<a><b/></a>", index) for index in range(6)]
        )
        runs = []
        for _ in range(2):
            engine = DeliveryEngine(chain3)
            engine.publish_corpus(corpus, rate=2.0, arrivals="poisson", seed=3)
            runs.append(engine.run())
        assert runs[0] == runs[1]

    def test_publish_corpus_validates_inputs(self, chain3):
        from repro.xmltree.corpus import DocumentCorpus

        corpus = DocumentCorpus([doc("<a><b/></a>")])
        engine = DeliveryEngine(chain3)
        with pytest.raises(ValueError):
            engine.publish_corpus(corpus, rate=0.0)
        with pytest.raises(ValueError):
            engine.publish_corpus(corpus, rate=1.0, arrivals="uniformish")


class TestTopologyEvents:
    """Mid-simulation broker join/leave through the event queue."""

    def _churn_engine(self, overlay, **kwargs):
        kwargs.setdefault("allow_topology_churn", True)
        return DeliveryEngine(overlay, **kwargs)

    def test_churn_is_gated_by_opt_in(self, chain3):
        engine = DeliveryEngine(chain3)
        with pytest.raises(ValueError):
            engine.schedule_leave(1.0, 2)
        with pytest.raises(ValueError):
            engine.schedule_join(1.0, parent=0)

    def test_builder_opt_in_enables_churn(self):
        from repro.routing.builder import OverlayBuilder

        overlay, engine = (
            OverlayBuilder()
            .topology("chain", 3)
            .subscriptions([parse_xpath("/a/b")])
            .allow_topology_churn()
            .build()
        )
        engine.schedule_leave(1.0, 2)  # accepted
        engine.run()
        assert 2 not in overlay.brokers

    def test_event_validation(self):
        from repro.routing.engine import TopologyEvent

        with pytest.raises(ValueError):
            TopologyEvent(action="explode")
        with pytest.raises(ValueError):
            TopologyEvent(action="join")  # no parent
        with pytest.raises(ValueError):
            TopologyEvent(action="leave")  # no broker
        engine_event = TopologyEvent(action="join", parent=0, split=1)
        assert engine_event.parent == 0 and engine_event.split == 1

    def test_negative_event_time_rejected(self, chain3):
        engine = self._churn_engine(chain3)
        with pytest.raises(ValueError):
            engine.schedule_leave(-0.5, 2)

    def test_join_equips_newcomer_mid_run(self, chain3):
        engine = self._churn_engine(chain3)
        engine.publish(doc("<a><b/></a>"), at_broker=0, time=0.0)
        engine.schedule_join(0.5, parent=2)
        stats = engine.run()
        (when, event, minted) = engine.topology_log[0]
        assert (when, event.action, minted) == (0.5, "join", 3)
        assert 3 in chain3.brokers
        # The newcomer has engine state and appears in the stats maps.
        assert stats.queue_depth_peaks[3] == 0
        assert stats.busy_time[3] == 0.0

    def test_leave_reroutes_queued_and_in_service_documents(self):
        # Broker 1 is slow and will be retired while documents sit in
        # its queue; every delivery must still happen — at its merge
        # target — and the aborted service time is credited back.
        overlay = BrokerOverlay.chain(3)
        for broker_id in range(3):
            overlay.attach(broker_id, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        engine = self._churn_engine(
            overlay,
            service=ServiceModel(base=5.0, per_match=0.0),
            links=LinkModel(default=0.1),
        )
        for index in range(3):
            engine.publish(doc("<a><b/></a>", index), at_broker=1, time=0.0)
        engine.schedule_leave(6.0, 1)  # one served, one in service, one queued
        stats = engine.run()
        assert all(
            delivered == frozenset({0, 1, 2})
            for delivered in engine.delivered_sets().values()
        )
        assert 1 not in overlay.brokers
        # One full service (5.0) plus one second of the aborted one: the
        # unfinished remainder was credited back on the leave.
        assert stats.busy_time[1] == pytest.approx(6.0)

    def test_forwards_computed_before_leave_reach_merge_target(self):
        # Broker 0's filtering step names neighbour 1; broker 1 retires
        # before the slow service completes, so the copy must follow the
        # merge chain instead of crashing on a dead id.
        overlay = BrokerOverlay.chain(3)
        overlay.attach(2, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        engine = self._churn_engine(
            overlay,
            service=ServiceModel(base=2.0, per_match=0.0),
            links=LinkModel(default=0.1),
        )
        engine.publish(doc("<a><b/></a>"), at_broker=0, time=0.0)
        engine.schedule_leave(1.0, 1)  # while the publisher is in service
        engine.run()
        assert engine.delivered_sets() == {0: frozenset({0})}
        assert sorted(overlay.brokers) == [0, 2]

    def test_leave_of_publish_broker_rehomes_its_queue(self, chain3):
        engine = self._churn_engine(
            chain3, service=ServiceModel(base=3.0, per_match=0.0)
        )
        for index in range(2):
            engine.publish(doc("<a><b/></a>", index), at_broker=2, time=0.0)
        engine.schedule_leave(0.5, 2)
        engine.run()
        # Both documents still reach every subscriber, including the
        # retired broker's own (re-homed) one.
        assert all(
            delivered == frozenset({0, 1, 2})
            for delivered in engine.delivered_sets().values()
        )

    def test_topology_churn_replays_bit_for_bit(self, chain3):
        from repro.xmltree.corpus import DocumentCorpus

        corpus = DocumentCorpus(
            [doc("<a><b/></a>", index) for index in range(6)]
        )
        outcomes = []
        for _ in range(2):
            overlay = BrokerOverlay.chain(3)
            for broker_id in range(3):
                overlay.attach(broker_id, parse_xpath("/a/b"))
            overlay.advertise_subscriptions()
            engine = self._churn_engine(
                overlay,
                service=ServiceModel(base=0.4, per_match=0.1),
                links=LinkModel(default=0.7),
            )
            engine.publish_corpus(corpus, rate=1.5, arrivals="poisson", seed=7)
            engine.schedule_leave(1.2, 1)
            engine.schedule_join(2.3, parent=0)
            outcomes.append(
                (engine.run(), engine.delivered_sets(), engine.topology_log)
            )
        assert outcomes[0] == outcomes[1]


class TestZeroDeliveryClasses:
    """latency_by_class on classes that never deliver anything."""

    def test_class_latency_digest_of_no_samples(self):
        from repro.routing.broker import ClassLatency

        digest = ClassLatency.of([])
        assert digest.deliveries == 0
        assert (digest.p50, digest.p95, digest.p99) == (0.0, 0.0, 0.0)
        assert (digest.mean, digest.max) == (0.0, 0.0)

    def test_undelivered_class_stays_out_of_the_stats(self, chain3):
        engine = DeliveryEngine(chain3)
        engine.publish(doc("<a><b/></a>", 0), at_broker=0, priority_class=1)
        # Class 7 publishes a document nobody subscribes to.
        engine.publish(doc("<z/>", 1), at_broker=0, priority_class=7)
        stats = engine.run()
        assert sorted(stats.latency_by_class) == [1]
        assert stats.latency_by_class[1].deliveries == stats.deliveries
        assert engine.delivered_sets()[1] == frozenset()

    def test_no_publishes_at_all_reports_empty_classes(self, chain3):
        stats = DeliveryEngine(chain3).run()
        assert stats.latency_by_class == {}
        assert stats.deliveries == 0


class TestOutOfBandTopologyChanges:
    def test_engine_serves_brokers_added_after_construction(self):
        # Builder first, topology churn after: the engine must equip
        # out-of-band newcomers lazily instead of crashing on arrival.
        overlay = BrokerOverlay.chain(2)
        overlay.attach(0, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        engine = DeliveryEngine(overlay)
        joined = overlay.add_broker(1)
        subscription = overlay.subscribe(joined, parse_xpath("/a/b"))
        engine.publish(doc("<a><b/></a>"), at_broker=joined, time=0.0)
        stats = engine.run()
        assert engine.delivered_sets() == {0: frozenset({0, subscription})}
        assert stats.queue_depth_peaks[joined] == 1


class TestStaleTopologyEvents:
    """Scheduled events naming brokers an earlier event retired."""

    @pytest.fixture()
    def churn_chain(self):
        overlay = BrokerOverlay.chain(3)
        for broker_id in range(3):
            overlay.attach(broker_id, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        return overlay

    def test_join_under_retired_parent_lands_at_merge_target(
        self, churn_chain
    ):
        engine = DeliveryEngine(churn_chain, allow_topology_churn=True)
        engine.schedule_leave(1.0, 1, merge_into=0)
        engine.schedule_join(2.0, parent=1)  # parent retires first
        engine.publish(doc("<a><b/></a>"), at_broker=0, time=3.0)
        engine.run()
        joined = engine.topology_log[-1][2]
        assert 0 in churn_chain.brokers[joined].neighbors
        assert engine.delivered_sets() == {0: frozenset({0, 1, 2})}

    def test_second_leave_of_same_broker_is_recorded_noop(self, churn_chain):
        engine = DeliveryEngine(churn_chain, allow_topology_churn=True)
        engine.schedule_leave(1.0, 1)
        engine.schedule_leave(2.0, 1)
        engine.run()
        assert sorted(churn_chain.brokers) == [0, 2]
        # Both events are logged; the stale one resolves to the target.
        assert [entry[2] for entry in engine.topology_log] == [0, 0]

    def test_stale_merge_target_falls_back_to_default(self, churn_chain):
        engine = DeliveryEngine(churn_chain, allow_topology_churn=True)
        engine.schedule_leave(1.0, 0)
        # Broker 0 is gone by t=2; retiring 1 "into 0" resolves/falls back.
        engine.schedule_leave(2.0, 1, merge_into=0)
        engine.run()
        assert len(churn_chain.brokers) == 1

    def test_retired_split_resolves_to_spliced_edge(self, churn_chain):
        engine = DeliveryEngine(churn_chain, allow_topology_churn=True)
        engine.schedule_leave(1.0, 1, merge_into=2)
        # "Split the link towards broker 1" follows the merge: that
        # link's successor is the spliced edge 0 — 2.
        engine.schedule_join(2.0, parent=0, split=1)
        engine.run()
        joined = engine.topology_log[-1][2]
        assert churn_chain.brokers[joined].neighbors == [0, 2]

    def test_split_merged_into_parent_degrades_to_leaf_graft(
        self, churn_chain
    ):
        engine = DeliveryEngine(churn_chain, allow_topology_churn=True)
        engine.schedule_leave(1.0, 1, merge_into=0)
        # Broker 1 collapsed into the would-be parent: there is no edge
        # left to split, so the join grafts a plain leaf instead of
        # aborting the run.
        engine.schedule_join(2.0, parent=0, split=1)
        engine.run()
        joined = engine.topology_log[-1][2]
        assert churn_chain.brokers[joined].neighbors == [0]

    def test_rerouted_duplicates_never_inflate_latency_stats(self):
        # A copy in service at the retiring broker is re-serviced at the
        # merge target, which re-delivers to the target's own
        # subscriber; only the first delivery may enter the stats.
        overlay = BrokerOverlay.chain(3)
        for broker_id in range(3):
            overlay.attach(broker_id, parse_xpath("/a/b"))
        overlay.advertise_subscriptions()
        engine = DeliveryEngine(
            overlay,
            service=ServiceModel(base=1.0, per_match=0.0),
            links=LinkModel(default=0.1),
            allow_topology_churn=True,
        )
        engine.publish(doc("<a><b/></a>"), at_broker=0, time=0.0)
        engine.schedule_leave(1.5, 1, merge_into=0)
        stats = engine.run()
        assert engine.delivered_sets() == {0: frozenset({0, 1, 2})}
        assert stats.deliveries == 3
        assert stats.latency_by_class[0].deliveries == 3
