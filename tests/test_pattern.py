"""Tree-pattern model: structure, validation, unordered equality."""

import pytest
from hypothesis import given

from repro.core.labels import DESCENDANT, WILDCARD
from repro.core.pattern import PatternError, PatternNode, TreePattern
from tests.strategies import tree_patterns


def chain(*labels: str) -> PatternNode:
    node = None
    for label in reversed(labels):
        node = PatternNode(label, (node,) if node else ())
    assert node is not None
    return node


class TestPatternNode:
    def test_leaf(self):
        node = PatternNode("a")
        assert node.is_leaf
        assert node.size() == 1
        assert node.height() == 1

    def test_children_are_tuple(self):
        node = PatternNode("a", [PatternNode("b")])
        assert isinstance(node.children, tuple)

    def test_immutable(self):
        node = PatternNode("a")
        with pytest.raises(AttributeError):
            node.label = "b"

    def test_descendant_requires_single_child(self):
        with pytest.raises(PatternError):
            PatternNode(DESCENDANT)
        with pytest.raises(PatternError):
            PatternNode(DESCENDANT, (PatternNode("a"), PatternNode("b")))

    def test_descendant_child_cannot_be_descendant(self):
        inner = PatternNode(DESCENDANT, (PatternNode("a"),))
        with pytest.raises(PatternError):
            PatternNode(DESCENDANT, (inner,))

    def test_descendant_child_may_be_wildcard(self):
        node = PatternNode(DESCENDANT, (PatternNode(WILDCARD),))
        assert node.children[0].label == WILDCARD

    def test_root_label_rejected_on_nodes(self):
        with pytest.raises(PatternError):
            PatternNode("/.")

    def test_size_and_height(self):
        node = PatternNode("a", (chain("b", "c"), PatternNode("d")))
        assert node.size() == 4
        assert node.height() == 3

    def test_tags_excludes_operators(self):
        node = PatternNode(
            "a", (PatternNode(WILDCARD), PatternNode(DESCENDANT, (PatternNode("b"),)))
        )
        assert node.tags() == {"a", "b"}

    def test_iter_subtree_preorder(self):
        node = PatternNode("a", (PatternNode("b", (PatternNode("c"),)), PatternNode("d")))
        labels = [n.label for n in node.iter_subtree()]
        assert labels == ["a", "b", "c", "d"]


class TestUnorderedEquality:
    def test_sibling_order_irrelevant(self):
        p1 = PatternNode("a", (PatternNode("b"), PatternNode("c")))
        p2 = PatternNode("a", (PatternNode("c"), PatternNode("b")))
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_deep_reordering(self):
        p1 = PatternNode("a", (chain("b", "x"), chain("b", "y")))
        p2 = PatternNode("a", (chain("b", "y"), chain("b", "x")))
        assert p1 == p2

    def test_different_labels_unequal(self):
        assert PatternNode("a") != PatternNode("b")

    def test_different_structure_unequal(self):
        assert PatternNode("a", (PatternNode("b"),)) != PatternNode("a")

    def test_not_equal_to_other_types(self):
        assert PatternNode("a") != "a"


class TestTreePattern:
    def test_requires_children(self):
        with pytest.raises(PatternError):
            TreePattern(())

    def test_immutable(self):
        pattern = TreePattern((PatternNode("a"),))
        with pytest.raises(AttributeError):
            pattern.root_children = ()

    def test_size_includes_root(self):
        pattern = TreePattern((PatternNode("a"),))
        assert pattern.size() == 2

    def test_height_includes_root(self):
        pattern = TreePattern((chain("a", "b", "c"),))
        assert pattern.height() == 4

    def test_tags_union_over_children(self):
        pattern = TreePattern((PatternNode("a"), chain("b", "c")))
        assert pattern.tags() == {"a", "b", "c"}

    def test_has_descendant_ops(self):
        plain = TreePattern((PatternNode("a"),))
        desc = TreePattern((PatternNode(DESCENDANT, (PatternNode("a"),)),))
        assert not plain.has_descendant_ops()
        assert desc.has_descendant_ops()

    def test_has_wildcards(self):
        plain = TreePattern((PatternNode("a"),))
        wild = TreePattern((PatternNode(WILDCARD),))
        assert not plain.has_wildcards()
        assert wild.has_wildcards()

    def test_root_children_order_irrelevant(self):
        p1 = TreePattern((PatternNode("a"), PatternNode("b")))
        p2 = TreePattern((PatternNode("b"), PatternNode("a")))
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_iter_nodes_covers_all(self):
        pattern = TreePattern((chain("a", "b"), PatternNode("c")))
        assert sorted(n.label for n in pattern.iter_nodes()) == ["a", "b", "c"]


class TestPatternProperties:
    @given(tree_patterns())
    def test_equality_is_reflexive(self, pattern):
        assert pattern == pattern

    @given(tree_patterns())
    def test_hash_consistent_with_rebuild(self, pattern):
        clone = TreePattern(tuple(reversed(pattern.root_children)))
        assert clone == pattern
        assert hash(clone) == hash(pattern)

    @given(tree_patterns())
    def test_size_counts_nodes(self, pattern):
        assert pattern.size() == 1 + sum(1 for _ in pattern.iter_nodes())

    @given(tree_patterns())
    def test_height_at_least_two(self, pattern):
        assert pattern.height() >= 2
