"""Property suite for the dynamic broker topology (the PR's headline).

Hypothesis generates interleavings of ``add_broker`` / ``remove_broker``
/ ``subscribe`` / ``unsubscribe`` over random workloads and all three
advertisement policies, and asserts the three guarantees that make
topology churn safe:

* **rebuild equality** — after every operation, each broker's routing
  table equals one of a from-scratch rebuild of the final topology over
  the surviving subscriptions (broker and subscriber ids relabelled by
  rank, since the lived-in overlay mints fresh ids);
* **flat matching** — routed delivery equals flat evaluation of the
  per-broker aggregation state: multi-hop forwarding with covering
  loses nothing and invents nothing;
* **sync ≡ engine** — the discrete-event engine delivers exactly the
  synchronous walk's subscriber sets over the churned topology, and
  per-subscription delivery survives broker leaves scheduled
  *mid-simulation* (in-flight documents are re-routed, not lost).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.engine import DeliveryEngine, LinkModel, ServiceModel
from repro.routing.overlay import BrokerId, BrokerOverlay, SubscriptionId
from repro.routing.policy import (
    CommunityPolicy,
    HybridPolicy,
    PerSubscriptionPolicy,
)
from repro.xmltree.corpus import DocumentCorpus
from tests.strategies import property_max_examples, tree_patterns
from tests.test_selectivity_properties import corpora

POLICIES = (
    ("per_subscription", lambda: PerSubscriptionPolicy()),
    ("community", lambda: CommunityPolicy(0.5)),
    ("hybrid", lambda: HybridPolicy(0.5, aggregate_above=2)),
)


def relabeled_signature(overlay):
    """Rank-relabelled routing state (the library's own comparator)."""
    return overlay.topology_signature()


def rebuild(overlay, policy, provider):
    """A fresh overlay over *overlay*'s final topology and membership.

    Delegates to :meth:`BrokerOverlay.rebuilt` with the policy made
    explicit, so a drifting ``overlay.policy`` attribute could not mask
    a divergence from the policy the test advertised with.
    """
    return overlay.rebuilt(policy, provider)


def flat_delivered(overlay, corpus, document):
    """Delivery by flat evaluation of every broker's aggregation state."""
    delivered = set()
    for node in overlay.brokers.values():
        for advertised, members in node.communities:
            if document.doc_id in corpus.match_set(advertised):
                delivered.update(members)
    return delivered


def churn(overlay, patterns, data, max_ops=6):
    """Drive one random interleaving of the four lifecycle operations.

    Yields after every operation so callers can assert invariants at
    each step, not just at the end.
    """
    live = list(overlay.subscriptions)
    for step in range(data.draw(st.integers(1, max_ops), label="ops")):
        choices = ["subscribe", "join"]
        if live:
            choices.append("unsubscribe")
        if len(overlay.brokers) > 1:
            choices.append("leave")
        op = data.draw(st.sampled_from(choices), label=f"op{step}")
        if op == "subscribe":
            home = data.draw(
                st.sampled_from(sorted(overlay.brokers)), label="home"
            )
            pattern = data.draw(st.sampled_from(patterns), label="pattern")
            live.append(overlay.subscribe(home, pattern))
        elif op == "unsubscribe":
            victim = data.draw(st.sampled_from(live), label="victim")
            live.remove(victim)
            overlay.unsubscribe(victim)
        elif op == "join":
            parent = data.draw(
                st.sampled_from(sorted(overlay.brokers)), label="parent"
            )
            split = None
            neighbors = overlay.brokers[parent].neighbors
            if neighbors and data.draw(st.booleans(), label="split?"):
                split = data.draw(st.sampled_from(neighbors), label="split")
            overlay.add_broker(parent, split=split)
        else:
            retiring = data.draw(
                st.sampled_from(sorted(overlay.brokers)), label="retiring"
            )
            merge_into = None
            if data.draw(st.booleans(), label="explicit merge?"):
                merge_into = data.draw(
                    st.sampled_from(overlay.brokers[retiring].neighbors),
                    label="merge_into",
                )
            overlay.remove_broker(retiring, merge_into=merge_into)
        yield op


def seeded_overlay(
    topology, n_brokers, patterns, policy, provider, data, seeds=None
):
    if seeds is None:
        seeds = data.draw(
            st.lists(st.sampled_from(patterns), max_size=4), label="seeds"
        )
    overlay = BrokerOverlay.build(topology, n_brokers, seed=3)
    for position, pattern in enumerate(seeds):
        overlay.attach(position % n_brokers, pattern)
    overlay.advertise(policy, provider)
    return overlay


class TestRebuildEquality:
    @settings(max_examples=property_max_examples(10), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.sampled_from(["chain", "star", "random_tree"]),
        st.integers(min_value=1, max_value=4),
        st.sampled_from([name for name, _ in POLICIES]),
        st.data(),
    )
    def test_every_operation_matches_fresh_rebuild(
        self, docs, patterns, topology, n_brokers, policy_name, data
    ):
        corpus = DocumentCorpus(docs)
        policy = dict(POLICIES)[policy_name]()
        provider = corpus if policy.uses_similarity else None
        overlay = seeded_overlay(
            topology, n_brokers, patterns, policy, provider, data
        )
        for op in churn(overlay, patterns, data):
            fresh = rebuild(overlay, policy, provider)
            assert relabeled_signature(overlay) == relabeled_signature(
                fresh
            ), (op, policy_name)

    @settings(max_examples=property_max_examples(10), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.sampled_from([name for name, _ in POLICIES]),
        st.data(),
    )
    def test_lifecycle_handles_stay_typed(
        self, docs, patterns, policy_name, data
    ):
        corpus = DocumentCorpus(docs)
        policy = dict(POLICIES)[policy_name]()
        provider = corpus if policy.uses_similarity else None
        overlay = seeded_overlay("chain", 2, patterns, policy, provider, data)
        joined = overlay.add_broker(0)
        assert isinstance(joined, BrokerId)
        subscription = overlay.subscribe(joined, patterns[0])
        assert isinstance(subscription, SubscriptionId)
        target = overlay.remove_broker(joined)
        assert isinstance(target, BrokerId)
        # The re-homed subscription is still retirable.
        assert overlay.unsubscribe(subscription) == patterns[0]


class TestDeliveryEquivalence:
    @settings(max_examples=property_max_examples(8), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.sampled_from(["chain", "star", "random_tree"]),
        st.sampled_from([name for name, _ in POLICIES]),
        st.data(),
    )
    def test_routed_delivery_equals_flat_matching(
        self, docs, patterns, topology, policy_name, data
    ):
        corpus = DocumentCorpus(docs)
        policy = dict(POLICIES)[policy_name]()
        provider = corpus if policy.uses_similarity else None
        overlay = seeded_overlay(topology, 3, patterns, policy, provider, data)
        for _ in churn(overlay, patterns, data):
            pass
        order = sorted(overlay.brokers)
        for index, document in enumerate(corpus.documents):
            delivered, _, _ = overlay.route(
                document, order[index % len(order)]
            )
            assert delivered == flat_delivered(
                overlay, corpus, document
            ), policy_name

    @settings(max_examples=property_max_examples(8), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.sampled_from([name for name, _ in POLICIES]),
        st.sampled_from([0.4, 4.0]),
        st.data(),
    )
    def test_sync_walk_equals_event_engine_after_churn(
        self, docs, patterns, policy_name, rate, data
    ):
        corpus = DocumentCorpus(docs)
        policy = dict(POLICIES)[policy_name]()
        provider = corpus if policy.uses_similarity else None
        overlay = seeded_overlay(
            "random_tree", 3, patterns, policy, provider, data
        )
        for _ in churn(overlay, patterns, data):
            pass
        order = sorted(overlay.brokers)
        expected = {
            index: frozenset(
                overlay.route(document, order[index % len(order)])[0]
            )
            for index, document in enumerate(corpus.documents)
        }
        engine = DeliveryEngine(
            overlay,
            service=ServiceModel(base=0.2, per_match=0.1),
            links=LinkModel(default=0.5),
        )
        engine.publish_corpus(corpus, rate=rate)
        engine.run()
        assert engine.delivered_sets() == expected, policy_name


class TestMidSimulationChurn:
    @settings(max_examples=property_max_examples(8), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.sampled_from([0.5, 3.0]),
        st.data(),
    )
    def test_leave_mid_stream_never_loses_deliveries(
        self, docs, patterns, rate, data
    ):
        # Per-subscription advertisement: delivery is exact matching, so
        # the delivered sets must survive a broker retiring while its
        # documents are queued, in service, or on the wire.
        corpus = DocumentCorpus(docs)
        overlay = BrokerOverlay.build("random_tree", 4, seed=9)
        homes = [
            data.draw(st.integers(0, 3), label="home") for _ in patterns
        ]
        subscriptions = [
            overlay.attach(home, pattern)
            for home, pattern in zip(homes, patterns, strict=True)
        ]
        overlay.advertise_subscriptions()
        wanted = {
            index: frozenset(
                subscription
                for subscription, pattern in zip(subscriptions, patterns, strict=True)
                if document.doc_id in corpus.match_set(pattern)
            )
            for index, document in enumerate(corpus.documents)
        }
        engine = DeliveryEngine(
            overlay,
            service=ServiceModel(base=0.4, per_match=0.1),
            links=LinkModel(default=1.0),
            allow_topology_churn=True,
        )
        engine.publish_corpus(corpus, rate=rate)
        retiring = data.draw(st.integers(0, 3), label="retiring")
        when = data.draw(
            st.sampled_from([0.3, 1.1, 2.7]), label="leave time"
        )
        engine.schedule_leave(when, retiring)
        engine.run()
        assert engine.delivered_sets() == wanted
        assert engine.topology_log[0][1].action == "leave"

    @settings(max_examples=property_max_examples(6), deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from([name for name, _ in POLICIES]),
        st.data(),
    )
    def test_pre_stream_topology_events_equal_pre_churned_overlay(
        self, docs, patterns, policy_name, data
    ):
        # Topology events that fire before the first publish must leave
        # the engine equivalent to one built over the already-churned
        # overlay — for every policy.
        corpus = DocumentCorpus(docs)
        policy = dict(POLICIES)[policy_name]()
        provider = corpus if policy.uses_similarity else None

        seeds = data.draw(
            st.lists(st.sampled_from(patterns), max_size=4), label="seeds"
        )
        churned = seeded_overlay(
            "chain", 3, patterns, policy, provider, data, seeds=seeds
        )
        retiring = data.draw(st.sampled_from([0, 1, 2]), label="retiring")
        churned.add_broker(retiring)
        churned.remove_broker(retiring)
        order = sorted(churned.brokers)
        expected = {
            index: frozenset(
                churned.route(document, order[index % len(order)])[0]
            )
            for index, document in enumerate(corpus.documents)
        }

        # Same seeds, same churn — but applied as engine events at t=0.
        staged = seeded_overlay(
            "chain", 3, patterns, policy, provider, data, seeds=seeds
        )
        engine = DeliveryEngine(staged, allow_topology_churn=True)
        engine.schedule_join(0.0, retiring)
        engine.schedule_leave(0.0, retiring)
        engine.publish_corpus(corpus, rate=2.0, start=0.5)
        engine.run()
        assert engine.delivered_sets() == expected, policy_name
