"""Workload substrate: Zipf sampling, document generation, pattern
generation, and positive/negative workload construction."""

import random

import pytest

from repro.core.labels import WILDCARD
from repro.dtd.builtin import nitf_dtd
from repro.dtd.parser import parse_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import DocumentGenerator, GeneratorConfig, generate_documents
from repro.generators.querygen import PatternGenConfig, PatternGenerator
from repro.generators.workload import WorkloadBuilder
from repro.generators.zipf import ZipfSampler, zipf_choice
from repro.xmltree.corpus import DocumentCorpus


class TestZipf:
    def test_needs_positive_n(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(3, theta=-1)

    def test_samples_in_range(self):
        sampler = ZipfSampler(5, rng=random.Random(1))
        assert all(0 <= sampler.sample() < 5 for _ in range(500))

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(7, theta=1.0)
        assert sum(sampler.probability(r) for r in range(7)) == pytest.approx(1.0)

    def test_skew_orders_probabilities(self):
        sampler = ZipfSampler(5, theta=1.0)
        probs = [sampler.probability(r) for r in range(5)]
        assert probs == sorted(probs, reverse=True)

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(4, theta=0.0)
        for rank in range(4):
            assert sampler.probability(rank) == pytest.approx(0.25)

    def test_zipf1_frequencies(self):
        rng = random.Random(3)
        sampler = ZipfSampler(2, theta=1.0, rng=rng)
        draws = [sampler.sample() for _ in range(20_000)]
        # P(rank 0) = 1/(1 + 1/2) = 2/3.
        share = draws.count(0) / len(draws)
        assert abs(share - 2 / 3) < 0.02

    def test_zipf_choice(self):
        rng = random.Random(4)
        items = ["x", "y", "z"]
        chosen = {zipf_choice(items, 1.0, rng) for _ in range(200)}
        assert chosen <= set(items)
        assert "x" in chosen

    def test_zipf_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            zipf_choice([], 1.0, random.Random(0))

    def test_zipf_choice_singleton(self):
        assert zipf_choice(["only"], 1.0, random.Random(0)) == "only"


TINY_DTD = parse_dtd(
    """
    <!ELEMENT root (section+)>
    <!ELEMENT section (title, para*, section?)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT para (#PCDATA)>
    """
)


class TestDocumentGenerator:
    def test_root_is_dtd_root(self):
        doc = DocumentGenerator(TINY_DTD, seed=1).generate()
        assert doc.labels[0] == "root"

    def test_deterministic_per_seed(self):
        a = DocumentGenerator(TINY_DTD, seed=5).generate()
        b = DocumentGenerator(TINY_DTD, seed=5).generate()
        assert a.to_nested() == b.to_nested()

    def test_seed_variation(self):
        docs = {
            str(DocumentGenerator(TINY_DTD, seed=s).generate().to_nested())
            for s in range(10)
        }
        assert len(docs) > 1

    def test_depth_bound(self):
        config = GeneratorConfig(max_depth=4)
        for seed in range(20):
            doc = DocumentGenerator(TINY_DTD, seed=seed, config=config).generate()
            assert doc.depth() <= 4

    def test_node_budget(self):
        config = GeneratorConfig(max_nodes=20, p_repeat=0.9, max_repeats=10)
        doc = DocumentGenerator(nitf_dtd(), seed=2, config=config).generate()
        assert len(doc) <= 20 + 5  # small overshoot from the final particle

    def test_children_conform_to_dtd(self):
        dtd = nitf_dtd()
        doc = DocumentGenerator(dtd, seed=3).generate()
        for node in doc.iter_preorder():
            allowed = set(dtd.element(doc.labels[node]).child_names())
            for child in doc.children[node]:
                assert doc.labels[child] in allowed

    def test_values_emitted_when_enabled(self):
        config = GeneratorConfig(include_values=True)
        doc = DocumentGenerator(TINY_DTD, seed=4, config=config).generate()
        assert any("-v" in label for label in doc.labels)

    def test_values_absent_by_default(self):
        doc = DocumentGenerator(TINY_DTD, seed=4).generate()
        assert not any("-v" in label for label in doc.labels)

    def test_stream_assigns_sequential_ids(self):
        docs = list(DocumentGenerator(TINY_DTD, seed=1).stream(5, start_id=10))
        assert [d.doc_id for d in docs] == [10, 11, 12, 13, 14]

    def test_generate_documents_helper(self):
        docs = generate_documents(TINY_DTD, 7, seed=2)
        assert len(docs) == 7
        assert [d.doc_id for d in docs] == list(range(7))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GeneratorConfig(max_depth=0)
        with pytest.raises(ValueError):
            GeneratorConfig(p_optional=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(p_repeat=1.0)

    @pytest.mark.parametrize("dtd_name", ["nitf", "xcbl"])
    def test_calibration_hits_paper_size(self, dtd_name):
        """The per-DTD presets produce ~100 tag pairs per document."""
        from repro.dtd.builtin import builtin_dtd

        docs = generate_documents(
            builtin_dtd(dtd_name), 150, seed=7,
            config=DOC_GENERATOR_PRESETS[dtd_name],
        )
        corpus = DocumentCorpus(docs)
        assert 60 <= corpus.average_edges() <= 160
        assert max(d.depth() for d in docs) <= 10


class TestPatternGenerator:
    def test_rooted_at_dtd_root(self):
        generator = PatternGenerator(
            TINY_DTD, seed=1, config=PatternGenConfig(p_descendant=0.0)
        )
        for _ in range(20):
            pattern = generator.generate()
            top = pattern.root_children[0]
            assert top.label in ("root", WILDCARD)

    def test_deterministic_per_seed(self):
        a = PatternGenerator(TINY_DTD, seed=9).generate_many(5)
        b = PatternGenerator(TINY_DTD, seed=9).generate_many(5)
        assert a == b

    def test_distinct_patterns(self):
        patterns = PatternGenerator(nitf_dtd(), seed=2).generate_many(50)
        assert len(set(patterns)) == 50

    def test_height_bounded(self):
        config = PatternGenConfig(height=4)
        generator = PatternGenerator(nitf_dtd(), seed=3, config=config)
        for _ in range(50):
            pattern = generator.generate()
            # '//' wrappers may add nodes beyond the walk height.
            assert pattern.height() <= 2 * config.height + 2

    def test_no_operators_when_probabilities_zero(self):
        config = PatternGenConfig(p_star=0.0, p_descendant=0.0)
        generator = PatternGenerator(nitf_dtd(), seed=4, config=config)
        for _ in range(30):
            pattern = generator.generate()
            assert not pattern.has_wildcards()
            assert not pattern.has_descendant_ops()

    def test_operators_appear_with_high_probabilities(self):
        config = PatternGenConfig(p_star=0.8, p_descendant=0.8)
        generator = PatternGenerator(nitf_dtd(), seed=5, config=config)
        patterns = [generator.generate() for _ in range(30)]
        assert any(p.has_wildcards() for p in patterns)
        assert any(p.has_descendant_ops() for p in patterns)

    def test_branching_controlled(self):
        wide = PatternGenConfig(p_branch=0.95, p_stop=0.0)
        narrow = PatternGenConfig(p_branch=0.0, p_stop=0.0)
        wide_sizes = [
            PatternGenerator(nitf_dtd(), seed=6, config=wide).generate().size()
            for _ in range(30)
        ]
        narrow_sizes = [
            PatternGenerator(nitf_dtd(), seed=6, config=narrow).generate().size()
            for _ in range(30)
        ]
        assert sum(wide_sizes) > sum(narrow_sizes)

    def test_tags_come_from_dtd(self):
        generator = PatternGenerator(nitf_dtd(), seed=7)
        for _ in range(20):
            assert generator.generate().tags() <= set(nitf_dtd().elements)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PatternGenConfig(height=0)
        with pytest.raises(ValueError):
            PatternGenConfig(p_star=2.0)


class TestWorkloadBuilder:
    @pytest.fixture(scope="class")
    def corpus(self):
        docs = generate_documents(TINY_DTD, 60, seed=11)
        return DocumentCorpus(docs)

    def test_builds_both_sets(self, corpus):
        builder = WorkloadBuilder(TINY_DTD, corpus, seed=1)
        workload = builder.build(n_positive=10, n_negative=5)
        assert len(workload.positive) == 10
        assert len(workload.negative) == 5

    def test_positive_patterns_match(self, corpus):
        builder = WorkloadBuilder(TINY_DTD, corpus, seed=2)
        workload = builder.build(n_positive=10, n_negative=3)
        for pattern in workload.positive:
            assert corpus.match_count(pattern) > 0

    def test_negative_patterns_match_nothing(self, corpus):
        builder = WorkloadBuilder(TINY_DTD, corpus, seed=3)
        workload = builder.build(n_positive=5, n_negative=10)
        for pattern in workload.negative:
            assert corpus.match_count(pattern) == 0

    def test_patterns_distinct(self, corpus):
        builder = WorkloadBuilder(TINY_DTD, corpus, seed=4)
        workload = builder.build(n_positive=10, n_negative=10)
        combined = workload.positive + workload.negative
        assert len(set(combined)) == len(combined)

    def test_deterministic(self, corpus):
        first = WorkloadBuilder(TINY_DTD, corpus, seed=5).build(5, 5)
        second = WorkloadBuilder(TINY_DTD, corpus, seed=5).build(5, 5)
        assert first.positive == second.positive
        assert first.negative == second.negative

    def test_repr(self, corpus):
        workload = WorkloadBuilder(TINY_DTD, corpus, seed=6).build(2, 2)
        assert "positive=2" in repr(workload)
