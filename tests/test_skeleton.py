"""Skeleton trees (Section 3.1): coalescing, idempotence, path extraction."""

from hypothesis import given

from repro.xmltree.skeleton import is_skeleton, skeleton, skeleton_paths
from repro.xmltree.tree import XMLTree
from tests.strategies import xml_trees


def label_paths(tree: XMLTree) -> set[tuple[str, ...]]:
    """All distinct root-to-node label paths of a tree."""
    return {tree.path_labels(node) for node in tree.iter_preorder()}


class TestSkeleton:
    def test_same_tag_children_coalesced(self):
        tree = XMLTree.from_nested(("a", [("b", ["c"]), ("b", ["d"])]))
        result = skeleton(tree)
        assert result.to_nested() == ("a", [("b", ["c", "d"])])

    def test_coalescing_cascades(self):
        # Two b-children each with an e-child: the e's merge too.
        tree = XMLTree.from_nested(
            ("a", [("b", [("e", ["k"])]), ("b", [("e", ["m"])])])
        )
        result = skeleton(tree)
        assert result.to_nested() == ("a", [("b", [("e", ["k", "m"])])])

    def test_distinct_tags_untouched(self):
        tree = XMLTree.from_nested(("a", ["b", "c", "d"]))
        assert skeleton(tree).to_nested() == tree.to_nested()

    def test_figure2_t1(self, figure2_documents):
        result = skeleton(figure2_documents[0])
        # Paper: skeleton of T1 is a(b(e(k,m), g(n), f))
        assert result.to_nested() == (
            "a",
            [("b", [("e", ["k", "m"]), ("g", ["n"]), "f"])],
        )

    def test_figure2_t3(self, figure2_documents):
        result = skeleton(figure2_documents[2])
        # Paper: skeleton of T3 is a(b(e(k), f(n)), c(f(o), e(n), h(n)))
        assert result.to_nested() == (
            "a",
            [
                ("b", [("e", ["k"]), ("f", ["n"])]),
                ("c", [("f", ["o"]), ("e", ["n"]), ("h", ["n"])]),
            ],
        )

    def test_doc_id_preserved(self):
        tree = XMLTree.from_nested(("a", ["b"]), doc_id=42)
        assert skeleton(tree).doc_id == 42


class TestIsSkeleton:
    def test_detects_duplicates(self):
        assert not is_skeleton(XMLTree.from_nested(("a", ["b", "b"])))

    def test_accepts_skeletons(self):
        assert is_skeleton(XMLTree.from_nested(("a", ["b", "c"])))


class TestSkeletonPaths:
    def test_paths_of_figure2_t1(self, figure2_documents):
        paths = sorted(skeleton_paths(figure2_documents[0]))
        assert paths == [
            ("a", "b", "e", "k"),
            ("a", "b", "e", "m"),
            ("a", "b", "f"),
            ("a", "b", "g", "n"),
        ]

    def test_single_node_document(self):
        assert list(skeleton_paths(XMLTree.from_nested("a"))) == [("a",)]

    def test_path_not_extended_by_other_instance(self):
        # One b is a leaf, another has a child: the coalesced b is NOT a
        # leaf, so ('a','b') must not be reported as a full path.
        tree = XMLTree.from_nested(("a", ["b", ("b", ["c"])]))
        assert sorted(skeleton_paths(tree)) == [("a", "b", "c")]


class TestSkeletonProperties:
    @given(xml_trees())
    def test_idempotent(self, tree):
        once = skeleton(tree)
        twice = skeleton(once)
        assert once.to_nested() == twice.to_nested()

    @given(xml_trees())
    def test_result_is_skeleton(self, tree):
        assert is_skeleton(skeleton(tree))

    @given(xml_trees())
    def test_label_paths_preserved(self, tree):
        assert label_paths(tree) == label_paths(skeleton(tree))

    @given(xml_trees())
    def test_never_larger(self, tree):
        assert len(skeleton(tree)) <= len(tree)

    @given(xml_trees())
    def test_paths_match_skeleton_leaves(self, tree):
        skel = skeleton(tree)
        expected = {skel.path_labels(leaf) for leaf in skel.leaves()}
        assert set(skeleton_paths(tree)) == expected

    @given(xml_trees())
    def test_root_label_preserved(self, tree):
        assert skeleton(tree).labels[0] == tree.labels[0]
