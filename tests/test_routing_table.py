"""Covering-aware broker routing tables."""

import pytest

from repro.core.pattern_parser import parse_xpath
from repro.routing.table import RoutingTable, TableEntry
from repro.xmltree.tree import XMLTree


@pytest.fixture()
def document():
    # a(b(e(k)), d(e(m)))
    return XMLTree.from_nested(
        ("a", [("b", [("e", ["k"])]), ("d", [("e", ["m"])])]), doc_id=1
    )


class TestCoveringInsert:
    def test_plain_insert(self):
        table = RoutingTable()
        assert table.add(parse_xpath("/a/b"), "link-1")
        assert len(table) == 1

    def test_covered_insert_dropped(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        # /a/b ⊑ /a: anything matching /a/b already routes over link-1.
        assert not table.add(parse_xpath("/a/b"), "link-1")
        assert len(table) == 1
        assert table.covered_inserts == 1

    def test_general_insert_evicts_covered(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b/e"), "link-1")
        table.add(parse_xpath("/a/b/f"), "link-1")
        assert table.add(parse_xpath("/a/b"), "link-1")
        assert len(table) == 1
        assert table.evicted_entries == 2
        assert table.patterns_for("link-1") == [parse_xpath("/a/b")]

    def test_duplicate_pattern_same_destination_dropped(self):
        table = RoutingTable()
        table.add(parse_xpath("//e"), "link-1")
        assert not table.add(parse_xpath("//e"), "link-1")
        assert len(table) == 1

    def test_covering_is_per_destination(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        # The same narrow pattern must survive for a different destination.
        assert table.add(parse_xpath("/a/b"), "link-2")
        assert len(table) == 2

    def test_incomparable_patterns_coexist(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        assert table.add(parse_xpath("/a/d"), "link-1")
        assert len(table) == 2


class TestMatching:
    def test_destinations_and_operation_count(self, document):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/q"), "link-2")
        destinations, operations = table.destinations_for(document)
        assert destinations == {"link-1"}
        assert operations == 2
        assert table.match_operations == 2

    def test_short_circuit_within_destination(self, document):
        table = RoutingTable()
        # Both match; one evaluation suffices to decide the destination.
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/d"), "link-1")
        destinations, operations = table.destinations_for(document)
        assert destinations == {"link-1"}
        assert operations == 1

    def test_exclude_skips_without_counting(self, document):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/b"), "link-2")
        destinations, operations = table.destinations_for(
            document, exclude=["link-1"]
        )
        assert destinations == {"link-2"}
        assert operations == 1

    def test_no_match_empty(self, document):
        table = RoutingTable()
        table.add(parse_xpath("/z"), "link-1")
        destinations, operations = table.destinations_for(document)
        assert destinations == set()
        assert operations == 1


class TestMaintenance:
    def test_remove_destination(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/d"), "link-1")
        table.add(parse_xpath("/a"), "link-2")
        assert table.remove_destination("link-1") == 2
        assert len(table) == 1
        assert table.destinations() == ["link-2"]
        assert table.remove_destination("missing") == 0

    def test_iteration_yields_entries(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        entries = list(table)
        assert entries == [
            TableEntry(pattern=parse_xpath("/a/b"), destination="link-1")
        ]

    def test_repr_mentions_sizes(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        assert "entries=1" in repr(table)
