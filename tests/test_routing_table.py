"""Covering-aware broker routing tables."""

import pytest

from repro.core.containment import contains
from repro.core.pattern_parser import parse_xpath
from repro.routing.table import RoutingTable, TableEntry
from repro.xmltree.tree import XMLTree


@pytest.fixture()
def document():
    # a(b(e(k)), d(e(m)))
    return XMLTree.from_nested(
        ("a", [("b", [("e", ["k"])]), ("d", [("e", ["m"])])]), doc_id=1
    )


class TestCoveringInsert:
    def test_plain_insert(self):
        table = RoutingTable()
        assert table.add(parse_xpath("/a/b"), "link-1")
        assert len(table) == 1

    def test_covered_insert_dropped(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        # /a/b ⊑ /a: anything matching /a/b already routes over link-1.
        assert not table.add(parse_xpath("/a/b"), "link-1")
        assert len(table) == 1
        assert table.covered_inserts == 1

    def test_general_insert_evicts_covered(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b/e"), "link-1")
        table.add(parse_xpath("/a/b/f"), "link-1")
        assert table.add(parse_xpath("/a/b"), "link-1")
        assert len(table) == 1
        assert table.evicted_entries == 2
        assert table.patterns_for("link-1") == [parse_xpath("/a/b")]

    def test_duplicate_pattern_same_destination_dropped(self):
        table = RoutingTable()
        table.add(parse_xpath("//e"), "link-1")
        assert not table.add(parse_xpath("//e"), "link-1")
        assert len(table) == 1

    def test_covering_is_per_destination(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        # The same narrow pattern must survive for a different destination.
        assert table.add(parse_xpath("/a/b"), "link-2")
        assert len(table) == 2

    def test_incomparable_patterns_coexist(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        assert table.add(parse_xpath("/a/d"), "link-1")
        assert len(table) == 2


class TestMatching:
    def test_destinations_and_operation_count(self, document):
        # Per-pattern operation counts are the linear oracle's semantics.
        table = RoutingTable(matching="linear")
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/q"), "link-2")
        destinations, operations = table.destinations_for(document)
        assert destinations == ["link-1"]
        assert operations == 2
        assert table.match_operations == 2

    def test_trie_mode_counts_trie_operations(self, document):
        table = RoutingTable()
        assert table.matching == "trie"
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/q"), "link-2")
        destinations, operations = table.destinations_for(document)
        assert destinations == ["link-1"]
        assert operations > 0
        assert table.match_operations == operations

    def test_trie_and_linear_agree_per_call(self, document):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/q"), "link-2")
        table.add(parse_xpath("//e"), "link-3")
        via_trie, _ = table.destinations_for(document, matching="trie")
        via_linear, _ = table.destinations_for(document, matching="linear")
        assert via_trie == via_linear == ["link-1", "link-3"]

    def test_unknown_matching_mode_rejected(self):
        with pytest.raises(ValueError):
            RoutingTable(matching="bloom")

    def test_short_circuit_within_destination(self, document):
        table = RoutingTable(matching="linear")
        # Both match; one evaluation suffices to decide the destination.
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/d"), "link-1")
        destinations, operations = table.destinations_for(document)
        assert destinations == ["link-1"]
        assert operations == 1

    def test_exclude_skips_without_counting(self, document):
        table = RoutingTable(matching="linear")
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/b"), "link-2")
        destinations, operations = table.destinations_for(
            document, exclude=["link-1"]
        )
        assert destinations == ["link-2"]
        assert operations == 1

    def test_exclude_skips_in_trie_mode(self, document):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/b"), "link-2")
        destinations, _ = table.destinations_for(document, exclude=["link-1"])
        assert destinations == ["link-2"]

    def test_no_match_empty(self, document):
        table = RoutingTable(matching="linear")
        table.add(parse_xpath("/z"), "link-1")
        destinations, operations = table.destinations_for(document)
        assert destinations == []
        assert operations == 1

    def test_destinations_in_table_order(self, document):
        # Deterministic dispatch: destinations come back in the order the
        # table first saw them, not in set-iteration (hash) order — in
        # both matching modes.
        for matching in ("trie", "linear"):
            table = RoutingTable(matching=matching)
            table.add(parse_xpath("/a/b"), "link-2")
            table.add(parse_xpath("/a/d"), "link-1")
            table.add(parse_xpath("/a"), "link-3")
            destinations, _ = table.destinations_for(document)
            assert destinations == ["link-2", "link-1", "link-3"], matching


class TestMaintenance:
    def test_remove_destination_returns_removed_patterns(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/d"), "link-1")
        table.add(parse_xpath("/a"), "link-2")
        assert table.remove_destination("link-1") == [
            parse_xpath("/a/b"),
            parse_xpath("/a/d"),
        ]
        assert len(table) == 1
        assert table.destinations() == ["link-2"]
        assert table.remove_destination("missing") == []

    def test_remove_destination_returns_maximal_patterns_only(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a"), "link-1")  # evicts /a/b
        assert table.remove_destination("link-1") == [parse_xpath("/a")]

    def test_contains_reports_active_entries_only(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        table.add(parse_xpath("/a/b"), "link-1")  # covered by /a
        assert parse_xpath("/a") in table
        assert parse_xpath("/a/b") not in table
        assert parse_xpath("/z") not in table
        assert "not a pattern" not in table

    def test_clear_resets_entries_and_counters(self, document):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        table.add(parse_xpath("/a/b"), "link-1")
        table.destinations_for(document)
        table.clear()
        assert len(table) == 0
        assert table.destinations() == []
        assert table.match_operations == 0
        assert table.covered_inserts == 0
        assert table.evicted_entries == 0
        assert table.restored_entries == 0

    def test_iteration_yields_entries(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        entries = list(table)
        assert entries == [
            TableEntry(pattern=parse_xpath("/a/b"), destination="link-1")
        ]

    def test_repr_mentions_sizes(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        assert "entries=1" in repr(table)


class TestRemovePattern:
    def test_remove_active_entry(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        removed, restored = table.remove_pattern(parse_xpath("/a/b"), "link-1")
        assert removed and restored == []
        assert len(table) == 0
        assert table.destinations() == []

    def test_remove_unknown_is_noop(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        assert table.remove_pattern(parse_xpath("/z"), "link-1") == (False, [])
        assert table.remove_pattern(parse_xpath("/a/b"), "link-9") == (False, [])
        assert len(table) == 1

    def test_removing_cover_restores_absorbed_insert(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        table.add(parse_xpath("/a/b"), "link-1")  # covered, absorbed
        removed, restored = table.remove_pattern(parse_xpath("/a"), "link-1")
        assert removed and restored == [parse_xpath("/a/b")]
        assert table.patterns_for("link-1") == [parse_xpath("/a/b")]
        assert table.restored_entries == 1

    def test_removing_cover_restores_evicted_entries(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b/e"), "link-1")
        table.add(parse_xpath("/a/b/f"), "link-1")
        table.add(parse_xpath("/a/b"), "link-1")  # evicts both
        removed, restored = table.remove_pattern(parse_xpath("/a/b"), "link-1")
        assert removed
        # Evicted entries come back as active entries, but are *not*
        # reported for re-advertising: their floods had already propagated
        # before the eviction.
        assert restored == []
        assert sorted(table.patterns_for("link-1"), key=repr) == sorted(
            [parse_xpath("/a/b/e"), parse_xpath("/a/b/f")], key=repr
        )
        assert table.restored_entries == 2

    def test_duplicate_instances_are_reference_counted(self):
        table = RoutingTable()
        table.add(parse_xpath("//e"), "link-1")
        table.add(parse_xpath("//e"), "link-1")  # duplicate, absorbed
        removed, restored = table.remove_pattern(parse_xpath("//e"), "link-1")
        assert (removed, restored) == (False, [])
        assert parse_xpath("//e") in table
        removed, restored = table.remove_pattern(parse_xpath("//e"), "link-1")
        assert (removed, restored) == (True, [])
        assert len(table) == 0

    def test_removing_absorbed_instance_keeps_cover(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        table.add(parse_xpath("/a/b"), "link-1")  # absorbed under /a
        removed, restored = table.remove_pattern(parse_xpath("/a/b"), "link-1")
        assert (removed, restored) == (False, [])
        # The absorbed instance is gone: removing the cover restores nothing.
        removed, restored = table.remove_pattern(parse_xpath("/a"), "link-1")
        assert (removed, restored) == (True, [])
        assert len(table) == 0

    def test_eviction_transfers_absorbed_bookkeeping(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b/e"), "link-1")
        table.add(parse_xpath("/a/b/e/k"), "link-1")  # absorbed under /a/b/e
        table.add(parse_xpath("/a/b"), "link-1")  # evicts /a/b/e (and its cargo)
        assert table.patterns_for("link-1") == [parse_xpath("/a/b")]
        removed, restored = table.remove_pattern(parse_xpath("/a/b"), "link-1")
        assert removed
        # /a/b/e becomes active again (no re-advertising needed: it was
        # evicted, so its flood already propagated) and re-absorbs the
        # covered insert /a/b/e/k.
        assert restored == []
        assert table.patterns_for("link-1") == [parse_xpath("/a/b/e")]
        removed, restored = table.remove_pattern(parse_xpath("/a/b/e"), "link-1")
        # /a/b/e/k's flood died in this table, so now it must re-advertise.
        assert removed and restored == [parse_xpath("/a/b/e/k")]

    def test_removing_evicted_instance_continues_unadvertise(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")  # propagated beyond
        table.add(parse_xpath("/a"), "link-1")    # evicts /a/b
        # The evicted instance had flooded through before the eviction, so
        # retiring it reports removed=True (the walk must continue) while
        # the covering entry stays.
        removed, restored = table.remove_pattern(parse_xpath("/a/b"), "link-1")
        assert (removed, restored) == (True, [])
        assert table.patterns_for("link-1") == [parse_xpath("/a")]
        # The cover now absorbs nothing: removing it restores nothing.
        removed, restored = table.remove_pattern(parse_xpath("/a"), "link-1")
        assert (removed, restored) == (True, [])
        assert len(table) == 0

    def test_compiled_matchers_pruned_with_retired_entries(self, document):
        # Matchers are compiled lazily by the linear scan only.
        table = RoutingTable(matching="linear")
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/b"), "link-2")
        table.destinations_for(document)  # compiles the matcher
        assert len(table._matchers) == 1
        table.remove_pattern(parse_xpath("/a/b"), "link-1")
        # Still active for link-2: the compiled matcher stays cached.
        assert len(table._matchers) == 1
        table.remove_destination("link-2")
        assert table._matchers == {}

    def test_compiled_matchers_pruned_on_eviction(self, document):
        table = RoutingTable(matching="linear")
        table.add(parse_xpath("/a/b/e"), "link-1")
        table.destinations_for(document)
        assert len(table._matchers) == 1
        table.add(parse_xpath("/a/b"), "link-1")  # evicts /a/b/e
        assert parse_xpath("/a/b/e") not in table._matchers

    def test_restored_entry_may_be_reabsorbed_by_another_cover(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b/e"), "link-1")
        table.add(parse_xpath("/a/b"), "link-1")   # evicts /a/b/e
        table.add(parse_xpath("//e"), "link-1")    # incomparable with /a/b
        removed, restored = table.remove_pattern(parse_xpath("/a/b"), "link-1")
        assert removed
        # /a/b/e resurfaces but //e covers it, so it is not re-activated.
        assert restored == []
        assert sorted(table.patterns_for("link-1"), key=repr) == sorted(
            [parse_xpath("//e")], key=repr
        )


class TestTopologySurgery:
    """The primitives broker join/leave is built on."""

    def test_rename_destination_moves_actives_and_absorbed(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        table.add(parse_xpath("/a/b"), "link-1")  # absorbed under /a
        assert table.rename_destination("link-1", "link-9")
        assert table.destinations() == ["link-9"]
        assert table.patterns_for("link-9") == [parse_xpath("/a")]
        # The reversible-covering record travelled with the rename.
        removed, restored = table.remove_pattern(parse_xpath("/a"), "link-9")
        assert removed and restored == [parse_xpath("/a/b")]

    def test_rename_missing_destination_is_noop(self):
        table = RoutingTable()
        assert not table.rename_destination("link-1", "link-2")
        assert len(table) == 0

    def test_rename_onto_existing_destination_rejected(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        table.add(parse_xpath("/a/b"), "link-2")
        with pytest.raises(ValueError):
            table.rename_destination("link-1", "link-2")

    def test_seed_records_downstream_has_state(self):
        table = RoutingTable()
        table.seed(parse_xpath("/a"), "link-1")
        table.seed(parse_xpath("/a/b"), "link-1")  # absorbed, flag False
        removed, restored = table.remove_pattern(parse_xpath("/a"), "link-1")
        assert removed
        # /a/b becomes active but is NOT reported for re-advertising:
        # seeding promised its downstream state already exists.
        assert restored == []
        assert table.patterns_for("link-1") == [parse_xpath("/a/b")]

    def test_seed_with_pending_flood_flag_readvertises(self):
        table = RoutingTable()
        table.seed(parse_xpath("/a"), "link-1")
        table.seed(parse_xpath("/a/b"), "link-1", resume_flood=True)
        removed, restored = table.remove_pattern(parse_xpath("/a"), "link-1")
        assert removed and restored == [parse_xpath("/a/b")]

    def test_export_destination_lists_actives_then_absorbed(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b/e"), "link-1")
        table.add(parse_xpath("/a/b"), "link-1")   # evicts /a/b/e (False)
        table.add(parse_xpath("/a/b/f"), "link-1")  # covered insert (True)
        table.add(parse_xpath("//e"), "link-1")
        exported = table.export_destination("link-1")
        assert exported[: len(table.patterns_for("link-1"))] == [
            (parse_xpath("/a/b"), False),
            (parse_xpath("//e"), False),
        ]
        assert (parse_xpath("/a/b/e"), False) in exported
        assert (parse_xpath("/a/b/f"), True) in exported

    def test_export_then_seed_transplants_state(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b/e"), "link-1")
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/b/f"), "link-1")
        clone = RoutingTable()
        for pattern, resume_flood in table.export_destination("link-1"):
            clone.seed(pattern, "link-1", resume_flood)
        assert clone.patterns_for("link-1") == table.patterns_for("link-1")
        # The clone replays the same resurrection behaviour: the covered
        # insert /a/b/f re-advertises, the evicted /a/b/e does not.
        removed, restored = clone.remove_pattern(parse_xpath("/a/b"), "link-1")
        assert removed and restored == [parse_xpath("/a/b/f")]

    def test_covers_probes_like_add(self):
        table = RoutingTable()
        table.add(parse_xpath("/a"), "link-1")
        assert table.covers(parse_xpath("/a/b"), "link-1")
        assert table.covers(parse_xpath("/a"), "link-1")
        assert not table.covers(parse_xpath("//e"), "link-1")
        assert not table.covers(parse_xpath("/a/b"), "link-2")

    def test_forwarded_instances_reflect_what_propagated(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b/e"), "link-1")  # active → propagated
        table.add(parse_xpath("/a/b"), "link-1")    # evicts: both went out
        table.add(parse_xpath("/a/b/f"), "link-1")  # covered: died here
        table.add(parse_xpath("//e"), "link-2")
        table.add(parse_xpath("/a/d"), ("deliver", (7,)))
        forwarded = table.forwarded_instances()
        assert forwarded.count(parse_xpath("/a/b")) == 1
        assert forwarded.count(parse_xpath("/a/b/e")) == 1
        assert parse_xpath("/a/b/f") not in forwarded
        assert parse_xpath("//e") in forwarded
        assert parse_xpath("/a/d") in forwarded
        # The excluded link contributes nothing.
        assert parse_xpath("//e") not in table.forwarded_instances(
            exclude=("link-2",)
        )

    def test_remove_destination_regression_no_residual_bookkeeping(
        self, document
    ):
        # The remove_broker path: dropping a link's destination must not
        # leave absorbed-instance records or cached matchers behind.
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a"), "link-1")      # evicts /a/b
        table.add(parse_xpath("/a/d"), "link-1")    # covered insert
        table.add(parse_xpath("/a"), "link-2")
        table.destinations_for(document)            # compile matchers
        assert table.remove_destination("link-1") == [parse_xpath("/a")]
        assert table._absorbed == {}
        assert "link-1" not in table._by_destination
        # /a stays cached (active for link-2); nothing else survives.
        assert set(table._matchers) <= {parse_xpath("/a")}
        # Re-adding the destination starts from a clean slate: the old
        # absorbed instances are gone for good.
        table.add(parse_xpath("/a"), "link-1")
        removed, restored = table.remove_pattern(parse_xpath("/a"), "link-1")
        assert removed and restored == []


def legacy_restore_order(candidates):
    """The pre-DAG O(k³) rescan picker, kept as the order oracle."""
    remaining = sorted(candidates, key=lambda item: item[1])
    ordered = []
    while remaining:
        pick = 0
        for position, (pattern, _) in enumerate(remaining):
            if not any(
                contains(other, pattern) and not contains(pattern, other)
                for index, (other, _) in enumerate(remaining)
                if index != position
            ):
                pick = position
                break
        ordered.append(remaining.pop(pick))
    return ordered


class TestRestoreOrderRegression:
    """The containment-DAG restore order against the legacy rescan."""

    def test_order_identical_to_legacy_rescan(self):
        chain = [parse_xpath("/a" + "/b" * depth) for depth in range(4)]
        candidates = [
            (chain[3], True),
            (chain[1], False),
            (parse_xpath("/c/d"), True),     # incomparable with the chain
            (chain[1], True),                # duplicate, flood flag differs
            (chain[2], True),
            (parse_xpath("//d"), False),     # contains /c/d
            (chain[0], True),
        ]
        assert RoutingTable._restore_order(candidates) == (
            legacy_restore_order(candidates)
        )

    def test_deep_absorption_chain_restores_in_quadratic_contains(
        self, monkeypatch
    ):
        depth = 100
        chain = [
            parse_xpath("/a" + "/b" * level) for level in range(depth)
        ]
        table = RoutingTable()
        for pattern in reversed(chain[1:]):
            table.add(pattern, "link-1")
        table.add(chain[0], "link-1")  # /a absorbs the whole chain
        assert table.patterns_for("link-1") == [chain[0]]

        calls = {"contains": 0}
        import repro.routing.table as table_module

        real_contains = table_module.contains

        def counting_contains(p, q):
            calls["contains"] += 1
            return real_contains(p, q)

        monkeypatch.setattr(table_module, "contains", counting_contains)
        removed, restored = table.remove_pattern(chain[0], "link-1")
        assert removed
        # Maximal-first: /a/b claims the active slot, the rest re-absorb.
        assert table.patterns_for("link-1") == [chain[1]]
        k = depth - 1
        # The DAG build is ≤ k·(k−1) contains calls; re-admission adds
        # O(k) more per candidate.  The legacy rescan needed Θ(k³)
        # (~half a million here).
        assert calls["contains"] <= 3 * k * k, calls["contains"]
        # The absorbed chain survived intact: peeling the new cover
        # promotes the next level, exactly as before the rewrite.
        removed, _ = table.remove_pattern(chain[1], "link-1")
        assert removed
        assert table.patterns_for("link-1") == [chain[2]]


class TestPruneMatcherRegression:
    """Matcher-cache pruning is refcounted, not a destination scan."""

    def test_remove_destination_leaves_no_matcher_residue(self, document):
        table = RoutingTable(matching="linear")
        for index in range(20):
            table.add(parse_xpath(f"/a/b/t{index}"), "link-1")
            table.add(parse_xpath(f"/a/b/t{index}"), "link-2")
        table.destinations_for(document)  # compile every matcher
        assert len(table._matchers) == 20
        table.remove_destination("link-1")
        # Still active for link-2: every matcher stays.
        assert len(table._matchers) == 20
        table.remove_destination("link-2")
        assert table._matchers == {}
        assert table._active_counts == {}

    def test_pruning_never_scans_destination_lists(self, document):
        class ScanGuard(dict):
            def values(self):
                raise AssertionError(
                    "_prune_matcher scanned _by_destination"
                )

        table = RoutingTable(matching="linear")
        for index in range(5):
            table.add(parse_xpath(f"/a/t{index}"), "link-1")
            table.add(parse_xpath(f"/a/t{index}"), "link-2")
        table.destinations_for(document)
        table._by_destination = ScanGuard(table._by_destination)
        table.remove_pattern(parse_xpath("/a/t0"), "link-1")
        table.remove_destination("link-2")
        # /a/t0 lost both registrations; /a/t1 survives via link-1.
        assert parse_xpath("/a/t0") not in table._matchers
        assert parse_xpath("/a/t1") in table._matchers

    def test_activity_refcounts_track_every_mutation(self):
        table = RoutingTable()
        table.add(parse_xpath("/a/b"), "link-1")
        table.add(parse_xpath("/a/b"), "link-2")
        table.add(parse_xpath("/a"), "link-1")   # evicts /a/b for link-1
        expected = {}
        for patterns in table._by_destination.values():
            for pattern in patterns:
                expected[pattern] = expected.get(pattern, 0) + 1
        assert table._active_counts == expected
        table.remove_destination("link-2")
        assert table._active_counts == {parse_xpath("/a"): 1}


class TestTrieModeOrdering:
    def legacy_order(self, table, matched):
        """The pre-index ordering contract: a full table scan."""
        return [d for d in table._by_destination if d in matched]

    def test_rank_index_reproduces_table_scan_order(self, document):
        table = RoutingTable()
        # Interleave adds so matched destinations are not sorted by name.
        table.add(parse_xpath("//e"), "link-9")
        table.add(parse_xpath("/a/b"), "link-2")
        table.add(parse_xpath("/a"), "link-5")
        table.add(parse_xpath("/a/d"), "link-0")
        found, _ = table.destinations_for(document)
        assert found == self.legacy_order(table, set(found))
        assert found == ["link-9", "link-2", "link-5", "link-0"]

    def test_order_pinned_across_churn(self, document):
        table = RoutingTable()
        for name in ("link-3", "link-1", "link-4", "link-2"):
            table.add(parse_xpath("//e"), name)
        table.remove_destination("link-1")
        table.add(parse_xpath("//e"), "link-1")  # re-admitted: goes last
        table.rename_destination("link-4", "link-9")  # rename: moves last
        table.remove_pattern(parse_xpath("//e"), "link-2")
        table.add(parse_xpath("/a"), "link-2")  # emptied, re-admitted last
        found, _ = table.destinations_for(document)
        assert found == self.legacy_order(table, set(found))
        assert found == ["link-3", "link-1", "link-9", "link-2"]

    def test_rank_index_mirrors_destination_keys(self, document):
        table = RoutingTable()
        for name in ("b", "a", "c"):
            table.add(parse_xpath("//e"), name)
        table.rename_destination("b", "z")
        table.remove_destination("a")
        assert sorted(table._dest_rank) == sorted(table._by_destination)
        ranked = sorted(table._dest_rank, key=table._dest_rank.__getitem__)
        assert ranked == list(table._by_destination)
