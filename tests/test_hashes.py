"""Distinct sampling (Gibbons): level law, bounded size, union/intersection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synopsis.hashes import DistinctHasher, HashSample


class TestDistinctHasher:
    def test_deterministic(self):
        hasher = DistinctHasher(seed=5)
        assert hasher.level_of(123) == hasher.level_of(123)

    def test_seed_changes_levels(self):
        a = DistinctHasher(seed=1)
        b = DistinctHasher(seed=2)
        ids = range(1000)
        assert [a.level_of(x) for x in ids] != [b.level_of(x) for x in ids]

    def test_level_distribution_is_geometric(self):
        hasher = DistinctHasher(seed=7)
        n = 20_000
        levels = [hasher.level_of(x) for x in range(n)]
        at_least_1 = sum(1 for lv in levels if lv >= 1) / n
        at_least_2 = sum(1 for lv in levels if lv >= 2) / n
        at_least_3 = sum(1 for lv in levels if lv >= 3) / n
        assert abs(at_least_1 - 0.5) < 0.02
        assert abs(at_least_2 - 0.25) < 0.02
        assert abs(at_least_3 - 0.125) < 0.02

    def test_filter_to_level(self):
        hasher = DistinctHasher(seed=3)
        ids = list(range(100))
        filtered = hasher.filter_to_level(ids, 2)
        assert filtered == frozenset(x for x in ids if hasher.level_of(x) >= 2)

    def test_filter_to_level_zero_keeps_all(self):
        hasher = DistinctHasher(seed=3)
        assert hasher.filter_to_level([1, 2, 3], 0) == {1, 2, 3}


class TestHashSample:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            HashSample(DistinctHasher(0), capacity=0)

    def test_small_streams_kept_exactly(self):
        sample = HashSample(DistinctHasher(1), capacity=10)
        for x in range(5):
            sample.insert(x)
        assert set(sample) == {0, 1, 2, 3, 4}
        assert sample.level == 0
        assert sample.estimate_cardinality() == 5.0

    def test_size_stays_bounded(self):
        sample = HashSample(DistinctHasher(2), capacity=16)
        for x in range(10_000):
            sample.insert(x)
        assert len(sample) <= 16
        assert sample.level > 0

    def test_sample_invariant(self):
        """Every id in the sample hashes to >= the current level, and every
        inserted id at >= level is present."""
        hasher = DistinctHasher(4)
        sample = HashSample(hasher, capacity=32)
        inserted = list(range(2_000))
        for x in inserted:
            sample.insert(x)
        level = sample.level
        expected = {x for x in inserted if hasher.level_of(x) >= level}
        assert set(sample.ids) == expected

    def test_estimate_accuracy(self):
        estimates = []
        for seed in range(20):
            sample = HashSample(DistinctHasher(seed), capacity=64)
            for x in range(5_000):
                sample.insert(x)
            estimates.append(sample.estimate_cardinality())
        mean = sum(estimates) / len(estimates)
        assert abs(mean - 5_000) / 5_000 < 0.25

    def test_duplicates_do_not_inflate(self):
        sample = HashSample(DistinctHasher(5), capacity=100)
        for _ in range(50):
            for x in range(10):
                sample.insert(x)
        assert sample.estimate_cardinality() == 10.0

    def test_discard(self):
        sample = HashSample(DistinctHasher(6), capacity=10)
        sample.insert(1)
        sample.discard(1)
        assert 1 not in sample
        sample.discard(99)  # absent: no error

    def test_subsample_to_lower_level_is_noop(self):
        sample = HashSample(DistinctHasher(7), capacity=8)
        for x in range(1000):
            sample.insert(x)
        level = sample.level
        sample.subsample_to(level - 1)
        assert sample.level == level

    def test_copy_is_independent(self):
        sample = HashSample(DistinctHasher(8), capacity=10)
        sample.insert(1)
        clone = sample.copy()
        clone.insert(2)
        assert 2 not in sample
        assert clone.hasher is sample.hasher


class TestUnionIntersection:
    def _filled(self, hasher, ids, capacity=64):
        sample = HashSample(hasher, capacity)
        for x in ids:
            sample.insert(x)
        return sample

    def test_union_in_place_small(self):
        hasher = DistinctHasher(9)
        a = self._filled(hasher, range(0, 10))
        b = self._filled(hasher, range(5, 15))
        a.union_in_place(b)
        assert set(a.ids) == set(range(15))

    def test_union_respects_level_alignment(self):
        hasher = DistinctHasher(10)
        a = self._filled(hasher, range(2_000), capacity=16)
        b = self._filled(hasher, range(2_000, 2_010), capacity=64)
        level_before = a.level
        a.union_in_place(b)
        assert a.level >= level_before
        for x in a.ids:
            assert hasher.level_of(x) >= a.level

    def test_union_estimate_reasonable(self):
        errors = []
        for seed in range(15):
            hasher = DistinctHasher(seed)
            a = self._filled(hasher, range(0, 3_000), capacity=64)
            b = self._filled(hasher, range(1_500, 4_500), capacity=64)
            a.union_in_place(b)
            errors.append(abs(a.estimate_cardinality() - 4_500) / 4_500)
        assert sum(errors) / len(errors) < 0.35

    def test_intersect_in_place_small(self):
        hasher = DistinctHasher(11)
        a = self._filled(hasher, range(0, 10))
        b = self._filled(hasher, range(5, 15))
        a.intersect_in_place(b)
        assert set(a.ids) == set(range(5, 10))

    def test_intersect_coherence(self):
        """Aligned intersection contains exactly the common ids surviving
        the common level — the shared-hash coherence property."""
        hasher = DistinctHasher(12)
        a = self._filled(hasher, range(0, 3_000), capacity=32)
        b = self._filled(hasher, range(1_000, 4_000), capacity=32)
        level = max(a.level, b.level)
        expected = {
            x for x in range(1_000, 3_000) if hasher.level_of(x) >= level
        }
        a.intersect_in_place(b)
        assert set(a.ids) == expected


class TestHashSampleProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.integers(0, 10_000), max_size=300),
        st.integers(1, 50),
        st.integers(0, 2**32),
    )
    def test_invariants(self, ids, capacity, seed):
        hasher = DistinctHasher(seed)
        sample = HashSample(hasher, capacity)
        for x in ids:
            sample.insert(x)
        assert len(sample) <= capacity
        for x in sample.ids:
            assert hasher.level_of(x) >= sample.level
        expected = {x for x in ids if hasher.level_of(x) >= sample.level}
        assert set(sample.ids) == expected
