"""Containment baseline: homomorphism soundness and known cases."""

from hypothesis import given, settings

from repro.core.containment import containment_order, contains, equivalent
from repro.core.pattern_parser import parse_xpath
from repro.xmltree.matcher import matches
from tests.strategies import tree_patterns, xml_trees


class TestKnownCases:
    def test_reflexive(self):
        p = parse_xpath("/a/b[c][d]")
        assert contains(p, p)

    def test_prefix_contains_extension(self):
        assert contains(parse_xpath("/a"), parse_xpath("/a/b"))
        assert not contains(parse_xpath("/a/b"), parse_xpath("/a"))

    def test_wildcard_contains_tag(self):
        assert contains(parse_xpath("/a/*"), parse_xpath("/a/b"))
        assert not contains(parse_xpath("/a/b"), parse_xpath("/a/*"))

    def test_descendant_contains_child(self):
        assert contains(parse_xpath("/a//c"), parse_xpath("/a/c"))
        assert contains(parse_xpath("/a//c"), parse_xpath("/a/b/c"))
        assert not contains(parse_xpath("/a/c"), parse_xpath("/a//c"))

    def test_root_descendant_contains_rooted(self):
        assert contains(parse_xpath("//c"), parse_xpath("/c"))
        assert contains(parse_xpath("//c"), parse_xpath("/a/b/c"))

    def test_branch_subset(self):
        assert contains(parse_xpath("/a[b]"), parse_xpath("/a[b][c]"))
        assert not contains(parse_xpath("/a[b][c]"), parse_xpath("/a[b]"))

    def test_figure1_pc_contains_pa(self):
        # "it trivially appears that pc contains pa ... but the converse is
        # not true" (Example 1.1).
        pa = parse_xpath("/media/CD/*/last/Mozart")
        pc = parse_xpath("/.[.//CD][.//Mozart]")
        assert contains(pc, pa)
        assert not contains(pa, pc)

    def test_figure1_pa_pd_incomparable(self):
        # "Formally, there is no containment relationship between pa and pd."
        pa = parse_xpath("/media/CD/*/last/Mozart")
        pd = parse_xpath("//composer[last/Mozart]")
        assert not contains(pa, pd)
        assert not contains(pd, pa)

    def test_descendant_absorbs_descendant(self):
        assert contains(parse_xpath("//a//c"), parse_xpath("//a/b//c"))

    def test_equivalent(self):
        assert equivalent(parse_xpath("/a[b][c]"), parse_xpath("/a[c][b]"))
        assert not equivalent(parse_xpath("/a"), parse_xpath("/a/b"))


class TestContainmentOrder:
    def test_edges(self):
        patterns = [
            parse_xpath("/a"),
            parse_xpath("/a/b"),
            parse_xpath("/a/b/c"),
        ]
        edges = set(containment_order(patterns))
        assert (0, 1) in edges
        assert (0, 2) in edges
        assert (1, 2) in edges
        assert (2, 0) not in edges


class TestSoundness:
    @settings(max_examples=200, deadline=None)
    @given(tree_patterns(), tree_patterns(), xml_trees())
    def test_containment_implies_match_implication(self, p, q, tree):
        """q ⊑ p and T ⊨ q together must imply T ⊨ p — the defining
        property, checked over random documents."""
        if contains(p, q) and matches(tree, q):
            assert matches(tree, p)

    @settings(max_examples=100, deadline=None)
    @given(tree_patterns())
    def test_reflexive_property(self, p):
        assert contains(p, p)

    @settings(max_examples=100, deadline=None)
    @given(tree_patterns(), tree_patterns(), tree_patterns())
    def test_transitive(self, p, q, r):
        if contains(p, q) and contains(q, r):
            # Homomorphisms compose, so the sound test must be transitive
            # on the instances it certifies... composition gives an
            # embedding, which the test finds (it searches exhaustively).
            assert contains(p, r)
