"""Property-based equivalence: policy objects vs the legacy flag API.

The api_redesign acceptance: for any random workload and topology, an
overlay advertised through first-class policy objects (or their string
spellings) must produce **identical routing tables and delivered
subscriber sets** to one advertised through the legacy
``advertise_subscriptions`` / ``advertise_communities`` methods — the
redesign moved the regime into an object without moving the behaviour.
The scheduling policies get the complementary guarantee: they reorder
service, never delivery membership.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.builder import OverlayBuilder
from repro.routing.engine import DeliveryEngine, LinkModel, ServiceModel
from repro.routing.overlay import TOPOLOGIES, BrokerOverlay
from repro.routing.policy import (
    CommunityPolicy,
    DeadlineScheduling,
    FifoScheduling,
    HybridPolicy,
    PerSubscriptionPolicy,
    PriorityScheduling,
)
from repro.xmltree.corpus import DocumentCorpus
from tests.strategies import tree_patterns
from tests.test_selectivity_properties import corpora


def table_snapshot(overlay):
    """Exact per-broker routing state (active entries only)."""
    return {
        broker_id: frozenset(
            (entry.pattern, entry.destination) for entry in node.table
        )
        for broker_id, node in overlay.brokers.items()
    }


def delivered_sets(overlay, corpus):
    """Per document, the synchronous path's delivered subscriber sets."""
    n_brokers = len(overlay.brokers)
    return {
        index: frozenset(overlay.route(document, index % n_brokers)[0])
        for index, document in enumerate(corpus.documents)
    }


def membership_overlay(topology, n_brokers, patterns):
    overlay = BrokerOverlay.build(topology, n_brokers, seed=5)
    overlay.attach_round_robin(patterns)
    return overlay


class TestPolicyEqualsLegacy:
    @settings(max_examples=25, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.sampled_from(sorted(TOPOLOGIES)),
        st.integers(min_value=1, max_value=4),
        st.sampled_from(["per_subscription", 0.3, 0.7]),
    )
    def test_policy_object_and_string_match_legacy(
        self, docs, patterns, topology, n_brokers, regime
    ):
        corpus = DocumentCorpus(docs)

        legacy = membership_overlay(topology, n_brokers, patterns)
        policied = membership_overlay(topology, n_brokers, patterns)
        stringed = membership_overlay(topology, n_brokers, patterns)
        if regime == "per_subscription":
            legacy.advertise_subscriptions()
            policied.advertise(PerSubscriptionPolicy())
            stringed.advertise("per_subscription")
        else:
            legacy.advertise_communities(corpus, threshold=regime)
            policied.advertise(CommunityPolicy(regime), provider=corpus)
            stringed.advertise(
                "community", provider=corpus, threshold=regime
            )
        for other in (policied, stringed):
            assert other.mode == legacy.mode
            assert table_snapshot(other) == table_snapshot(legacy)
            assert other.advertisement_messages == (
                legacy.advertisement_messages
            )
            assert delivered_sets(other, corpus) == delivered_sets(
                legacy, corpus
            )

    @settings(max_examples=20, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.sampled_from(sorted(TOPOLOGIES)),
        st.integers(min_value=1, max_value=4),
        st.sampled_from([0.3, 0.7]),
    )
    def test_builder_matches_legacy(
        self, docs, patterns, topology, n_brokers, threshold
    ):
        corpus = DocumentCorpus(docs)
        legacy = membership_overlay(topology, n_brokers, patterns)
        legacy.advertise_communities(corpus, threshold=threshold)
        built = (
            OverlayBuilder()
            .topology(topology, n_brokers, seed=5)
            .subscriptions(patterns)
            .provider(corpus)
            .advertisement(CommunityPolicy(threshold))
            .build_overlay()
        )
        assert table_snapshot(built) == table_snapshot(legacy)
        assert delivered_sets(built, corpus) == delivered_sets(
            legacy, corpus
        )

    @settings(max_examples=20, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=5),
        st.integers(min_value=1, max_value=4),
        st.sampled_from([0.3, 0.7]),
    )
    def test_hybrid_extremes_recover_both_regimes(
        self, docs, patterns, n_brokers, threshold
    ):
        corpus = DocumentCorpus(docs)

        aggregated = membership_overlay("chain", n_brokers, patterns)
        aggregated.advertise(
            HybridPolicy(threshold, aggregate_above=0), provider=corpus
        )
        community = membership_overlay("chain", n_brokers, patterns)
        community.advertise_communities(corpus, threshold=threshold)
        assert table_snapshot(aggregated) == table_snapshot(community)

        sparse = membership_overlay("chain", n_brokers, patterns)
        sparse.advertise(
            HybridPolicy(threshold, aggregate_above=len(patterns)),
            provider=corpus,
        )
        baseline = membership_overlay("chain", n_brokers, patterns)
        baseline.advertise_subscriptions()
        assert table_snapshot(sparse) == table_snapshot(baseline)


class TestBatchEqualsPerEvent:
    @settings(max_examples=20, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=3),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from(["per_subscription", 0.3, 0.7]),
        st.data(),
    )
    def test_subscribe_many_matches_event_loop(
        self, docs, base, burst, regime, data
    ):
        corpus = DocumentCorpus(docs)
        per_event = membership_overlay("chain", 3, base)
        batched = membership_overlay("chain", 3, base)
        for overlay in (per_event, batched):
            if regime == "per_subscription":
                overlay.advertise_subscriptions()
            else:
                overlay.advertise_communities(corpus, threshold=regime)
        home = data.draw(
            st.integers(min_value=0, max_value=2), label="home"
        )
        ids_event = [per_event.subscribe(home, p) for p in burst]
        ids_batch = batched.subscribe_many(home, burst)
        assert ids_batch == ids_event
        assert table_snapshot(batched) == table_snapshot(per_event)
        assert delivered_sets(batched, corpus) == delivered_sets(
            per_event, corpus
        )
        # And the batch retirement converges with the per-event one.
        for subscription_id in ids_event:
            per_event.unsubscribe(subscription_id)
        batched.unsubscribe_many(ids_batch)
        assert table_snapshot(batched) == table_snapshot(per_event)

    @settings(max_examples=20, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=3),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from([0.3, 0.7]),
        st.integers(min_value=0, max_value=6),
        st.data(),
    )
    def test_subscribe_many_matches_event_loop_hybrid(
        self, docs, base, burst, threshold, cutoff, data
    ):
        # PR 4 pinned the two base policies; HybridPolicy additionally
        # flips regimes as the burst pushes a broker across the cutoff,
        # so the batched path must converge through the flip too.
        corpus = DocumentCorpus(docs)
        per_event = membership_overlay("chain", 3, base)
        batched = membership_overlay("chain", 3, base)
        for overlay in (per_event, batched):
            overlay.advertise(
                HybridPolicy(threshold, aggregate_above=cutoff),
                provider=corpus,
            )
        home = data.draw(
            st.integers(min_value=0, max_value=2), label="home"
        )
        ids_event = [per_event.subscribe(home, p) for p in burst]
        ids_batch = batched.subscribe_many(home, burst)
        assert ids_batch == ids_event
        assert table_snapshot(batched) == table_snapshot(per_event)
        assert delivered_sets(batched, corpus) == delivered_sets(
            per_event, corpus
        )
        # Retire the burst through the opposite APIs to cross the cutoff
        # downward as well.
        for subscription_id in ids_event:
            per_event.unsubscribe(subscription_id)
        batched.unsubscribe_many(ids_batch)
        assert table_snapshot(batched) == table_snapshot(per_event)
        assert delivered_sets(batched, corpus) == delivered_sets(
            per_event, corpus
        )


class TestSchedulingNeverChangesDelivery:
    @settings(max_examples=15, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from(sorted(TOPOLOGIES)),
        st.sampled_from(["per_subscription", 0.5]),
        st.sampled_from([0.25, 4.0]),
    )
    def test_all_policies_deliver_identical_sets(
        self, docs, patterns, topology, regime, rate
    ):
        corpus = DocumentCorpus(docs)
        overlay = membership_overlay(topology, 3, patterns)
        if regime == "per_subscription":
            overlay.advertise_subscriptions()
        else:
            overlay.advertise_communities(corpus, threshold=regime)
        expected = delivered_sets(overlay, corpus)
        for scheduling in (
            FifoScheduling(),
            PriorityScheduling(),
            DeadlineScheduling(),
            DeadlineScheduling(default_slack=2.0),
        ):
            engine = DeliveryEngine(
                overlay,
                service=ServiceModel(base=0.2, per_match=0.1),
                links=LinkModel(default=0.5),
                scheduling=scheduling,
            )
            engine.publish_corpus(
                corpus, rate=rate, classes=(0, 1, 2), deadline_slack=3.0
            )
            engine.run()
            assert engine.delivered_sets() == expected, scheduling

    @settings(max_examples=10, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
        st.sampled_from(["priority", "deadline"]),
        st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
    )
    def test_non_fifo_runs_replay_bit_for_bit(
        self, docs, patterns, scheduling, rate
    ):
        corpus = DocumentCorpus(docs)
        overlay = membership_overlay("chain", 3, patterns)
        overlay.advertise_subscriptions()
        outcomes = []
        for _ in range(2):
            engine = DeliveryEngine(
                overlay,
                service=ServiceModel(base=0.1, per_match=0.3),
                links=LinkModel(default=0.7),
                scheduling=scheduling,
            )
            engine.publish_corpus(
                corpus,
                rate=rate,
                arrivals="poisson",
                seed=11,
                classes=(2, 0, 1),
                deadline_slack=5.0,
            )
            outcomes.append((engine.run(), engine.delivered_sets()))
        assert outcomes[0] == outcomes[1]

    @settings(max_examples=10, deadline=None)
    @given(
        corpora(),
        st.lists(tree_patterns(), min_size=1, max_size=4),
    )
    def test_class_latencies_partition_overall(self, docs, patterns):
        corpus = DocumentCorpus(docs)
        overlay = membership_overlay("star", 3, patterns)
        overlay.advertise_subscriptions()
        engine = DeliveryEngine(overlay, scheduling=PriorityScheduling())
        engine.publish_corpus(corpus, rate=2.0, classes=(0, 1))
        stats = engine.run()
        assert sum(
            digest.deliveries
            for digest in stats.latency_by_class.values()
        ) == stats.deliveries
        if stats.deliveries:
            assert max(
                digest.max for digest in stats.latency_by_class.values()
            ) == stats.latency_max
