"""Proximity metrics M1, M2, M3 (Section 4) on exact and estimated providers."""

import pytest
from hypothesis import given, settings

from repro.core.pattern_parser import parse_xpath
from repro.core.selectivity import SelectivityEstimator
from repro.core.similarity import (
    METRICS,
    SimilarityEstimator,
    SimilarityMatrix,
    m1_conditional,
    m2_mean_conditional,
    m3_joint_over_union,
)
from repro.xmltree.corpus import DocumentCorpus
from tests.strategies import tree_patterns
from tests.test_selectivity_properties import build_synopsis, corpora


@pytest.fixture()
def corpus(figure2_documents):
    return DocumentCorpus(figure2_documents)


class TestMetricValues:
    """Hand-computed values over the Figure 2 corpus.

    //b matches docs {1,2,3}, //q matches {4}, //o matches {3,4},
    //e matches {1,2,3,4,5,6}.
    """

    def test_m1_asymmetric(self, corpus):
        b = parse_xpath("//b")
        e = parse_xpath("//e")
        # P(e|b) = P(e ∧ b)/P(b) = (3/6)/(3/6) = 1; P(b|e) = (3/6)/1 = 1/2.
        assert m1_conditional(corpus, e, b) == pytest.approx(1.0)
        assert m1_conditional(corpus, b, e) == pytest.approx(0.5)

    def test_m2_symmetric_mean(self, corpus):
        b = parse_xpath("//b")
        e = parse_xpath("//e")
        expected = (1.0 + 0.5) / 2
        assert m2_mean_conditional(corpus, b, e) == pytest.approx(expected)
        assert m2_mean_conditional(corpus, e, b) == pytest.approx(expected)

    def test_m3_jaccard(self, corpus):
        b = parse_xpath("//b")
        o = parse_xpath("//o")
        # b:{1,2,3}, o:{3,4}; joint {3}; union {1,2,3,4}.
        assert m3_joint_over_union(corpus, b, o) == pytest.approx(1 / 4)

    def test_disjoint_patterns_zero(self, corpus):
        q = parse_xpath("//q")   # {4}
        p = parse_xpath("//p")   # {5}
        for metric in METRICS.values():
            assert metric(corpus, q, p) == 0.0

    def test_identical_patterns_one(self, corpus):
        b = parse_xpath("//b")
        for metric in METRICS.values():
            assert metric(corpus, b, b) == pytest.approx(1.0)

    def test_zero_denominator_handled(self, corpus):
        nothing = parse_xpath("/zzz")
        b = parse_xpath("//b")
        assert m1_conditional(corpus, b, nothing) == 0.0
        assert m2_mean_conditional(corpus, b, nothing) == 0.0
        assert m3_joint_over_union(corpus, nothing, nothing) == 0.0


class TestSimilarityEstimatorWrapper:
    def test_metric_dispatch(self, corpus):
        estimator = SimilarityEstimator(corpus)
        b, e = parse_xpath("//b"), parse_xpath("//e")
        assert estimator.similarity(b, e, metric="M1") == m1_conditional(
            corpus, b, e
        )
        assert estimator.similarity(b, e, metric="M3") == m3_joint_over_union(
            corpus, b, e
        )

    def test_unknown_metric(self, corpus):
        with pytest.raises(ValueError):
            SimilarityEstimator(corpus).similarity(
                parse_xpath("/a"), parse_xpath("/a"), metric="M9"
            )

    def test_matrix_shape_and_symmetry(self, corpus):
        patterns = [parse_xpath("//b"), parse_xpath("//o"), parse_xpath("//e")]
        matrix = SimilarityEstimator(corpus).matrix(patterns, metric="M3")
        assert len(matrix) == 3 and all(len(row) == 3 for row in matrix)
        for i in range(3):
            assert matrix[i][i] == pytest.approx(1.0)
            for j in range(3):
                assert matrix[i][j] == pytest.approx(matrix[j][i])

    def test_matrix_m1_asymmetric(self, corpus):
        patterns = [parse_xpath("//b"), parse_xpath("//e")]
        matrix = SimilarityEstimator(corpus).matrix(patterns, metric="M1")
        assert matrix[0][1] != matrix[1][0]


class TestEstimatedVsExact:
    def test_lossless_sets_estimator_matches_exact(self, figure2_documents):
        corpus = DocumentCorpus(figure2_documents)
        synopsis = build_synopsis(figure2_documents, mode="sets")
        estimated = SelectivityEstimator(synopsis)
        pairs = [
            (parse_xpath("//b"), parse_xpath("//e")),
            (parse_xpath("//o"), parse_xpath("//q")),
            (parse_xpath("/a/b"), parse_xpath("/a/c")),
        ]
        for p, q in pairs:
            for name, metric in METRICS.items():
                # Skeletonisation can only widen match sets; on this corpus
                # patterns are skeleton-exact, so values must agree.
                assert metric(estimated, p, q) == pytest.approx(
                    metric(corpus, p, q)
                ), (name, p, q)


class CountingProvider:
    """Wraps a provider and counts every call per argument (pair)."""

    def __init__(self, provider):
        self.provider = provider
        self.selectivity_calls: dict = {}
        self.joint_calls: dict = {}

    def selectivity(self, pattern):
        self.selectivity_calls[pattern] = (
            self.selectivity_calls.get(pattern, 0) + 1
        )
        return self.provider.selectivity(pattern)

    def joint_selectivity(self, p, q):
        key = frozenset((p, q))
        self.joint_calls[key] = self.joint_calls.get(key, 0) + 1
        return self.provider.joint_selectivity(p, q)

    @property
    def max_joint_calls_per_pair(self):
        return max(self.joint_calls.values(), default=0)

    @property
    def max_selectivity_calls_per_pattern(self):
        return max(self.selectivity_calls.values(), default=0)


def _sixty_patterns():
    """60 distinct patterns over the Figure 2 tag alphabet."""
    tags = ("b", "c", "d", "e", "f", "g", "h", "k", "m", "n", "o", "p", "q")
    patterns = [parse_xpath("/a")]
    patterns += [parse_xpath(f"/a/{t}") for t in tags]
    patterns += [parse_xpath(f"/a//{t}") for t in tags]
    patterns += [parse_xpath(f"/a/*/{t}") for t in tags]
    patterns += [parse_xpath(f"/a/b/{t}") for t in tags]
    patterns += [parse_xpath(f"/a/d/{t}") for t in tags[:7]]
    assert len(patterns) == 60 and len(set(patterns)) == 60
    return patterns


class TestSimilarityMatrix:
    @pytest.fixture()
    def patterns(self):
        return [
            parse_xpath("//b"),
            parse_xpath("//o"),
            parse_xpath("//e"),
            parse_xpath("//q"),
        ]

    def test_values_match_estimator_matrix(self, corpus, patterns):
        for metric in METRICS:
            engine = SimilarityMatrix(corpus, patterns, metric=metric)
            assert engine.values == SimilarityEstimator(corpus).matrix(
                patterns, metric=metric
            )

    def test_unknown_metric_rejected(self, corpus, patterns):
        with pytest.raises(ValueError):
            SimilarityMatrix(corpus, patterns, metric="M9")
        with pytest.raises(ValueError):
            SimilarityMatrix(corpus, patterns).similarity(
                patterns[0], patterns[1], metric="M9"
            )

    def test_callable_protocol(self, corpus, patterns):
        engine = SimilarityMatrix(corpus, patterns, metric="M3")
        assert engine(patterns[0], patterns[2]) == m3_joint_over_union(
            corpus, patterns[0], patterns[2]
        )
        assert len(engine) == 4

    def test_top_k(self, corpus, patterns):
        engine = SimilarityMatrix(corpus, patterns, metric="M3")
        # //b: sim 1/4 with //o, 1/2 with //e, 0 with //q.
        assert engine.top_k(0, 2) == [
            (2, pytest.approx(0.5)),
            (1, pytest.approx(0.25)),
        ]
        with pytest.raises(ValueError):
            engine.top_k(0, 0)
        with pytest.raises(IndexError):
            engine.top_k(9, 1)

    def test_neighbors(self, corpus, patterns):
        engine = SimilarityMatrix(corpus, patterns, metric="M3")
        assert [index for index, _ in engine.neighbors(0, 0.25)] == [2, 1]
        assert engine.neighbors(0, 0.9) == []
        with pytest.raises(ValueError):
            engine.neighbors(0, 1.5)

    def test_each_joint_pair_computed_at_most_once(self, corpus):
        patterns = _sixty_patterns()
        counting = CountingProvider(corpus)
        engine = SimilarityMatrix(counting, patterns, metric="M3")
        engine.values
        # Re-query everything; the memo must absorb all of it.
        engine.values
        engine.top_k(0, 10)
        engine.neighbors(3, 0.2)
        for p in patterns[:10]:
            for q in patterns[:10]:
                engine.similarity(p, q)
        assert counting.max_joint_calls_per_pair == 1
        assert counting.max_selectivity_calls_per_pattern == 1
        assert engine.distinct_joint_pairs == len(counting.joint_calls)

    def test_agglomerative_over_60_patterns_no_duplicate_provider_calls(
        self, corpus
    ):
        from repro.routing.community import agglomerative_clustering

        patterns = _sixty_patterns()
        counting = CountingProvider(corpus)
        engine = SimilarityMatrix(counting, patterns, metric="M3")
        communities = agglomerative_clustering(
            patterns, engine, n_communities=8
        )
        assert sorted(m for c in communities for m in c.members) == list(
            range(60)
        )
        assert counting.max_joint_calls_per_pair == 1
        assert counting.max_selectivity_calls_per_pattern == 1

    def test_leader_clustering_through_matrix_no_duplicate_calls(self, corpus):
        from repro.routing.community import leader_clustering

        patterns = _sixty_patterns()
        counting = CountingProvider(corpus)
        engine = SimilarityMatrix(counting, patterns, metric="M3")
        leader_clustering(patterns, engine, threshold=0.5)
        leader_clustering(patterns, engine, threshold=0.3)
        assert counting.max_joint_calls_per_pair == 1
        assert counting.max_selectivity_calls_per_pattern == 1


class TestMetricProperties:
    @settings(max_examples=80, deadline=None)
    @given(corpora(), tree_patterns(), tree_patterns())
    def test_bounds_and_symmetry(self, docs, p, q):
        corpus = DocumentCorpus(docs)
        for metric in METRICS.values():
            value = metric(corpus, p, q)
            assert 0.0 <= value <= 1.0
        assert m2_mean_conditional(corpus, p, q) == pytest.approx(
            m2_mean_conditional(corpus, q, p)
        )
        assert m3_joint_over_union(corpus, p, q) == pytest.approx(
            m3_joint_over_union(corpus, q, p)
        )

    @settings(max_examples=80, deadline=None)
    @given(corpora(), tree_patterns(), tree_patterns())
    def test_m3_never_exceeds_m1(self, docs, p, q):
        # joint/union <= joint/max(P(p),P(q)) <= min conditional <= M1, M2.
        corpus = DocumentCorpus(docs)
        m1 = m1_conditional(corpus, p, q)
        m2 = m2_mean_conditional(corpus, p, q)
        m3 = m3_joint_over_union(corpus, p, q)
        assert m3 <= m1 + 1e-12
        assert m3 <= m2 + 1e-12

    @settings(max_examples=80, deadline=None)
    @given(corpora(), tree_patterns())
    def test_self_similarity(self, docs, p):
        corpus = DocumentCorpus(docs)
        expected = 1.0 if corpus.selectivity(p) > 0 else 0.0
        for metric in METRICS.values():
            assert metric(corpus, p, p) == pytest.approx(expected)
