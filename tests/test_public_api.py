"""Public API surface: imports, __all__, and the CLI entry point."""

import subprocess
import sys

import pytest


class TestTopLevelExports:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_names_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.xmltree",
            "repro.synopsis",
            "repro.dtd",
            "repro.generators",
            "repro.routing",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_importable(self, module):
        imported = __import__(module, fromlist=["__all__"])
        for name in imported.__all__:
            assert hasattr(imported, name), f"{module}.{name}"

    def test_quickstart_flow(self):
        """The README quickstart in one test."""
        from repro import (
            DocumentSynopsis,
            SelectivityEstimator,
            SimilarityEstimator,
            parse_xml,
            parse_xpath,
        )

        synopsis = DocumentSynopsis(mode="hashes", capacity=64, seed=1)
        for doc_id in range(20):
            flavour = "b" if doc_id % 2 else "c"
            synopsis.insert_document(
                parse_xml(f"<a><{flavour}><d/></{flavour}></a>", doc_id=doc_id)
            )
        estimator = SelectivityEstimator(synopsis)
        p = parse_xpath("/a/b/d")
        q = parse_xpath("/a//d")
        assert 0.0 <= estimator.selectivity(p) <= 1.0
        sim = SimilarityEstimator(estimator)
        assert 0.0 <= sim.similarity(p, q, metric="M3") <= 1.0


class TestCommandLine:
    def test_cli_tiny_figure(self):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "summary",
                "--scale",
                "tiny",
                "--dtd",
                "nitf",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "nitf" in result.stdout

    def test_cli_rejects_unknown_target(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "figure99"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode != 0
