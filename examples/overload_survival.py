"""Overload survival walkthrough: bounded queues and back-pressure.

The latency example (`async_delivery.py`) shows queues turning table
size into delay — but its queues are unbounded, so past the saturation
knee the backlog (and every later document's latency) grows without
limit.  Real brokers bound their queues and shed or refuse load.  This
example pushes the same NITF stream well past the knee and compares
survival strategies:

1. generate an NITF corpus and subscriber patterns on a four-broker
   random tree;
2. replay the stream at a punishing rate with **unbounded** queues —
   the baseline that "survives" by letting latency explode;
3. replay identically under a bounded :class:`~repro.QueuePolicy` in
   each overflow mode — ``drop-new`` (refuse arrivals), ``drop-oldest``
   (evict the stalest backlog), ``nack`` (refuse *and* tell the
   publisher) — and watch the admitted traffic's tail latency stay
   bounded while the conservation ledger accounts for every copy;
4. replay once more with a **closed-loop** AIMD publisher
   (:class:`~repro.ClosedLoopSource`) against the NACK policy: the
   window backs off on every NACK, so almost everything offered is
   admitted — back-pressure instead of loss;
5. under sustained overload, split the stream into two subscriber
   classes scheduled by :class:`~repro.WeightedFairScheduling` and
   check the completion shares track the provisioned 3:1 weights.

Run:  PYTHONPATH=src python examples/overload_survival.py
"""

from __future__ import annotations

from repro import (
    ClosedLoopSource,
    LinkModel,
    OverlayBuilder,
    QueuePolicy,
    ServiceModel,
    WeightedFairScheduling,
)
from repro.dtd.builtin import nitf_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import generate_documents
from repro.generators.workload import WorkloadBuilder
from repro.xmltree.corpus import DocumentCorpus

N_DOCUMENTS = 150
N_SUBSCRIBERS = 24
N_BROKERS = 4
RATE = 8.0
CAPACITY = 6
FAIR_WEIGHTS = {0: 3.0, 1: 1.0}


def ledger(stats) -> str:
    return (
        f"offered={stats.offered_jobs:4d}  "
        f"completed={stats.completed_jobs:4d}  "
        f"dropped={stats.dropped_jobs:3d}  nacked={stats.nacked_jobs:3d}  "
        f"admission={stats.admission_ratio:5.3f}"
    )


def describe(label: str, stats) -> None:
    print(
        f"  {label:22s} p99={stats.latency_p99:7.2f}  "
        f"peak depth={stats.peak_queue_depth:3d}  "
        f"deliveries={stats.deliveries:5d}"
    )
    print(f"  {'':22s} {ledger(stats)}")


def main() -> None:
    dtd = nitf_dtd()
    print(f"generating {N_DOCUMENTS} NITF documents ...")
    corpus = DocumentCorpus(
        generate_documents(
            dtd, N_DOCUMENTS, seed=41, config=DOC_GENERATOR_PRESETS["nitf"]
        )
    )
    print(f"generating {N_SUBSCRIBERS} subscriber patterns ...")
    workload = WorkloadBuilder(dtd, corpus, seed=42).build(
        n_positive=N_SUBSCRIBERS, n_negative=0
    )

    builder = (
        OverlayBuilder()
        .topology("random_tree", N_BROKERS, seed=43)
        .subscriptions(workload.positive)
        .matching("linear")
        .service(ServiceModel(base=0.2, per_match=0.05))
        .links(LinkModel(default=1.0))
    )
    overlay = builder.build_overlay()
    print(
        f"overlay: {N_BROKERS} brokers; publishing at {RATE:g} docs/t — "
        "well past the saturation knee\n"
    )

    print("open-loop stream, queue policy sweep:")
    policies = {
        "unbounded": QueuePolicy(None),
        f"drop-new(cap={CAPACITY})": QueuePolicy(CAPACITY, "drop-new"),
        f"drop-oldest(cap={CAPACITY})": QueuePolicy(CAPACITY, "drop-oldest"),
        f"nack(cap={CAPACITY})": QueuePolicy(CAPACITY, "nack"),
    }
    outcomes = {}
    for label, policy in policies.items():
        engine = builder.queue_policy(policy).build_engine(overlay)
        engine.publish_corpus(corpus, rate=RATE)
        stats = engine.run()
        # The conservation ledger: every copy born is accounted dead.
        assert stats.in_flight_jobs == 0
        assert stats.offered_jobs == (
            stats.completed_jobs + stats.dropped_jobs + stats.nacked_jobs
        )
        outcomes[label] = stats
        describe(label, stats)
    print()

    print("closed-loop AIMD publisher against the NACK policy:")
    engine = (
        builder.queue_policy(QueuePolicy(CAPACITY, "nack"))
        .sources(
            ClosedLoopSource(
                corpus, at_broker=0, initial_window=4.0,
                feedback_delay=0.5, seed=3,
            )
        )
        .build_engine(overlay)
    )
    stats = engine.run()
    report = engine.source_report(0)
    describe("closed-loop nack", stats)
    print(
        f"  {'':22s} window ended at {report.window:.2f} after "
        f"{report.nack_signals} NACK signals; "
        f"{report.acked}/{report.published} documents absorbed"
    )
    print()

    print(f"weighted-fair shares under sustained overload ({FAIR_WEIGHTS}):")
    fair_builder = (
        OverlayBuilder()
        .topology("chain", 1)
        .subscriptions(workload.positive[:8])
        .matching("linear")
        .service(ServiceModel(base=0.2, per_match=0.05))
        .scheduling(WeightedFairScheduling(FAIR_WEIGHTS))
        .queue_policy(QueuePolicy(CAPACITY, "drop-oldest"))
    )
    engine = fair_builder.build_engine(fair_builder.build_overlay())
    span = len(corpus.documents) / RATE
    for repeat in range(3):
        engine.publish_corpus(
            corpus, rate=RATE, start=repeat * span, classes=(0, 1)
        )
    stats = engine.run()
    for priority_class, share in sorted(
        stats.completed_share_by_class.items()
    ):
        print(
            f"  class {priority_class}: share {share:.3f} "
            f"({stats.completed_by_class[priority_class]} completed)"
        )
    print()

    unbounded = outcomes["unbounded"]
    bounded = outcomes[f"drop-oldest(cap={CAPACITY})"]
    print(
        f"past the knee, the unbounded broker queues {unbounded.peak_queue_depth} "
        f"deep and its p99 reaches {unbounded.latency_p99:.2f} time units; "
        f"bounding the queue at {CAPACITY} holds the backlog at "
        f"{bounded.peak_queue_depth} and the admitted traffic's p99 at "
        f"{bounded.latency_p99:.2f} —\n"
        "shed load is counted, not lost: "
        "offered == completed + dropped + nacked, always."
    )


if __name__ == "__main__":
    main()
