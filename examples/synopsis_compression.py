"""Synopsis compression: accuracy under a shrinking space budget.

Reproduces the Figure 10 story interactively on the xCBL data set: build a
Hashes synopsis, compress it to a range of ratios α with the Section 3.3
operators (lossless folds first, then lossy folds + low-cardinality
deletions, then same-label merges), and watch the positive-query error grow
as the budget shrinks while negative queries stay reliably identified.

Run:  python examples/synopsis_compression.py
"""

from __future__ import annotations

from repro import DocumentSynopsis, SelectivityEstimator, compress_to_ratio, measure
from repro.core.errors import average_relative_error, root_mean_square_error
from repro.dtd.builtin import xcbl_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import generate_documents
from repro.generators.workload import WorkloadBuilder
from repro.xmltree.corpus import DocumentCorpus

N_DOCUMENTS = 250
N_PATTERNS = 40
HASH_SIZE = 50


def build_synopsis(documents) -> DocumentSynopsis:
    synopsis = DocumentSynopsis(mode="hashes", capacity=HASH_SIZE, seed=31)
    for document in documents:
        synopsis.insert_document(document)
    return synopsis


def main() -> None:
    dtd = xcbl_dtd()
    print(f"generating {N_DOCUMENTS} xCBL orders ...")
    documents = generate_documents(
        dtd, N_DOCUMENTS, seed=32, config=DOC_GENERATOR_PRESETS["xcbl"]
    )
    corpus = DocumentCorpus(documents)
    workload = WorkloadBuilder(dtd, corpus, seed=33).build(
        n_positive=N_PATTERNS, n_negative=N_PATTERNS
    )
    exact_positive = [corpus.selectivity(p) for p in workload.positive]
    exact_negative = [0.0] * len(workload.negative)

    baseline_size = measure(build_synopsis(documents)).total
    print(f"uncompressed synopsis size |HS| = {baseline_size} words\n")

    header = (
        f"{'alpha':>6s} {'|HcS|':>8s} {'folds':>6s} {'deletes':>8s} "
        f"{'merges':>7s} {'Erel+':>8s} {'Esqr-':>9s}"
    )
    print(header)
    print("-" * len(header))
    for alpha in (1.0, 0.8, 0.6, 0.4, 0.2):
        synopsis = build_synopsis(documents)
        report = compress_to_ratio(synopsis, alpha)
        estimator = SelectivityEstimator(synopsis)
        erel = average_relative_error(
            exact_positive,
            [estimator.selectivity(p) for p in workload.positive],
        )
        esqr = root_mean_square_error(
            exact_negative,
            [estimator.selectivity(p) for p in workload.negative],
        )
        print(
            f"{alpha:6.1f} {report.final.total:8d} {report.folds:6d} "
            f"{report.deletions:8d} {report.merges:7d} "
            f"{erel.percent:7.2f}% {esqr.value:9.5f}"
        )

    print(
        "\nAs in the paper's Figure 10: accuracy degrades gracefully down to\n"
        "small fractions of the original budget, and negative queries stay\n"
        "near-perfectly identified throughout."
    )


if __name__ == "__main__":
    main()
