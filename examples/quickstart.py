"""Quickstart: estimate tree-pattern selectivity and similarity over an
XML document stream.

This walks the full pipeline of the paper on a toy music-catalogue stream:

1. stream XML documents into a :class:`DocumentSynopsis` (Hashes mode);
2. estimate the selectivity ``P(p)`` of XPath-subset patterns;
3. estimate the similarity of two subscriptions under the three proximity
   metrics M1, M2, M3 — including the Figure 1 insight that two patterns
   with *no containment relationship* can still be near-equivalent on the
   actual document distribution.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    DocumentSynopsis,
    SelectivityEstimator,
    SimilarityEstimator,
    parse_xml,
    parse_xpath,
)

CD_TEMPLATE = """
<media>
  <CD>
    <composer><first>{first}</first><last>{last}</last></composer>
    <title>{title}</title>
    <interpreter><ensemble>{ensemble}</ensemble></interpreter>
  </CD>
</media>
"""

BOOK_TEMPLATE = """
<media>
  <book>
    <author><first>{first}</first><last>{last}</last></author>
    <title>{title}</title>
  </book>
</media>
"""

COMPOSERS = [("Wolfgang", "Mozart"), ("Ludwig", "Beethoven"), ("Clara", "Schumann")]
AUTHORS = [("William", "Shakespeare"), ("Jane", "Austen"), ("Mary", "Shelley")]
ENSEMBLES = ["Berliner Phil.", "Concertgebouw", "LSO"]


def make_stream(n_documents: int, seed: int = 7):
    """A stream mixing CD and book documents, 70/30."""
    rng = random.Random(seed)
    for doc_id in range(n_documents):
        if rng.random() < 0.7:
            first, last = rng.choice(COMPOSERS)
            text = CD_TEMPLATE.format(
                first=first,
                last=last,
                title=f"Opus {rng.randrange(100)}",
                ensemble=rng.choice(ENSEMBLES),
            )
        else:
            first, last = rng.choice(AUTHORS)
            text = BOOK_TEMPLATE.format(
                first=first, last=last, title=f"Volume {rng.randrange(100)}"
            )
        yield parse_xml(text, doc_id=doc_id)


def main() -> None:
    # 1. Maintain the synopsis incrementally over the stream.
    synopsis = DocumentSynopsis(mode="hashes", capacity=64, seed=1)
    for document in make_stream(500):
        synopsis.insert_document(document)
    print(f"synopsis after the stream: {synopsis}")

    # 2. Selectivity estimation.
    estimator = SelectivityEstimator(synopsis)
    for expression in (
        "/media/CD",
        "/media/book",
        "//Mozart",
        "/media/CD/*/last/Mozart",
        "/media/CD[title][interpreter]",
    ):
        probability = estimator.selectivity(parse_xpath(expression))
        print(f"P({expression:38s}) ≈ {probability:6.3f}")

    # 3. Similarity of the Figure 1 patterns on this stream.
    pa = parse_xpath("/media/CD/*/last/Mozart")     # rigid structure
    pd = parse_xpath("//composer[last/Mozart]")     # different shape...
    pb = parse_xpath("//CD/Mozart")                 # ...and a dead pattern
    similarity = SimilarityEstimator(estimator)
    print()
    for name, p, q in (("pa ~ pd", pa, pd), ("pa ~ pb", pa, pb)):
        for metric in ("M1", "M2", "M3"):
            value = similarity.similarity(p, q, metric=metric)
            print(f"{name}  {metric} = {value:5.3f}")
        print()

    print(
        "pa and pd are structurally unrelated (no containment either way)\n"
        "yet near-equivalent on this stream — exactly the cases the\n"
        "synopsis-based similarity is built to discover."
    )


if __name__ == "__main__":
    main()
