"""Broker lifecycle: persistence, restart, and online subscriber placement.

A content-based broker in production needs more than the core estimator:

1. it must **survive restarts** without replaying the document stream —
   the synopsis serialises to JSON and reloads bit-identically;
2. it must **place newly arriving subscribers** into the best semantic
   community online — a top-k most-similar query against the existing
   subscription population, evaluated purely on the synopsis.

Run:  python examples/broker_lifecycle.py
"""

from __future__ import annotations

import os
import tempfile

from repro import DocumentSynopsis, SelectivityEstimator, SimilarityEstimator
from repro.core.pattern_parser import parse_xpath, to_xpath
from repro.dtd.builtin import nitf_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import DocumentGenerator
from repro.generators.workload import WorkloadBuilder
from repro.routing.community import leader_clustering
from repro.synopsis.serialize import dump_synopsis, load_synopsis
from repro.xmltree.corpus import DocumentCorpus


def main() -> None:
    dtd = nitf_dtd()
    generator = DocumentGenerator(
        dtd, seed=51, config=DOC_GENERATOR_PRESETS["nitf"]
    )

    # --- day 1: the broker streams documents and serves subscribers -----
    synopsis = DocumentSynopsis(mode="hashes", capacity=64, seed=52)
    documents = list(generator.stream(250))
    for document in documents:
        synopsis.insert_document(document)

    corpus = DocumentCorpus(documents)
    subscriptions = WorkloadBuilder(dtd, corpus, seed=53).build(
        n_positive=25, n_negative=0
    ).positive

    similarity = SimilarityEstimator(SelectivityEstimator(synopsis))
    communities = leader_clustering(
        subscriptions,
        lambda p, q: similarity.similarity(p, q, metric="M3"),
        threshold=0.7,
    )
    print(f"day 1: {len(documents)} documents, {len(subscriptions)} subscribers, "
          f"{len(communities)} semantic communities")

    # --- maintenance window: persist and restart -------------------------
    path = os.path.join(tempfile.mkdtemp(), "synopsis.json")
    dump_synopsis(synopsis, path)
    size_kb = os.path.getsize(path) / 1024
    print(f"persisted synopsis to {path} ({size_kb:.0f} kB)")

    restarted = load_synopsis(path)
    restored_estimator = SelectivityEstimator(restarted)
    check = parse_xpath("//p")
    original = SelectivityEstimator(synopsis).selectivity(check)
    recovered = restored_estimator.selectivity(check)
    print(f"restart check: P(//p) = {original:.4f} before, "
          f"{recovered:.4f} after reload")
    assert original == recovered

    # --- day 2: the restarted broker keeps streaming ---------------------
    for document in generator.stream(100, start_id=250):
        restarted.insert_document(document)
    print(f"day 2: streamed 100 more documents "
          f"({restarted.n_documents} total in the synopsis)")

    # --- a new subscriber arrives ----------------------------------------
    new_subscriber = parse_xpath("//body.content//p")
    restored_similarity = SimilarityEstimator(restored_estimator)
    ranked = restored_similarity.top_k(
        new_subscriber, subscriptions, k=3, metric="M3"
    )
    print(f"\nnew subscription {to_xpath(new_subscriber)!r}: closest existing")
    for index, score in ranked:
        print(f"  M3={score:5.3f}  {to_xpath(subscriptions[index])}")

    best_index, best_score = ranked[0]
    community = next(c for c in communities if best_index in c.members)
    print(
        f"\nplaced next to subscription #{best_index} "
        f"(similarity {best_score:.3f}) in a community of "
        f"{len(community)} members — no exact match sets were ever needed."
    )


if __name__ == "__main__":
    main()
