"""Subscription churn: the event-driven broker lifecycle, end to end.

A production pub/sub overlay never sees a frozen subscriber population —
consumers come and go continuously.  This walkthrough drives the
lifecycle API:

1. build an NITF corpus, a stream synopsis (the only knowledge a real
   broker has), and a 4-broker overlay with community-aggregated
   advertisement over per-broker live ``SimilarityIndex`` engines;
2. churn the population: ``subscribe`` events re-aggregate only the home
   broker's touched communities, ``unsubscribe`` events withdraw
   advertisements hop-by-hop, resurrecting entries their pattern covered;
3. verify the headline property: after arbitrary churn, the routing state
   is identical to a from-scratch rebuild over the survivors — tables
   never decay, yet no epoch-wide rebuild ever runs;
4. inspect the engine's accounting: how much pairwise similarity work the
   index memo and the tag-disjointness prefilter avoided.

Run:  PYTHONPATH=src python examples/subscription_churn.py
"""

from __future__ import annotations

import random

from repro import (
    BrokerOverlay,
    CommunityPolicy,
    DocumentSynopsis,
    OverlayBuilder,
    SelectivityEstimator,
)
from repro.dtd.builtin import nitf_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import generate_documents
from repro.generators.workload import WorkloadBuilder
from repro.xmltree.corpus import DocumentCorpus

N_DOCUMENTS = 250
N_INITIAL = 24
N_BROKERS = 4
THRESHOLD = 0.5
EPOCHS = 4
CHURN_PER_EPOCH = 5


def routing_state(overlay: BrokerOverlay) -> dict:
    """Forward routing entries per broker (delivery groups vary with ids)."""
    return {
        broker_id: {
            entry.pattern
            for entry in node.table
            if entry.destination[0] == "forward"
        }
        for broker_id, node in overlay.brokers.items()
    }


def main() -> None:
    dtd = nitf_dtd()
    print(f"generating {N_DOCUMENTS} NITF documents ...")
    documents = generate_documents(
        dtd, N_DOCUMENTS, seed=41, config=DOC_GENERATOR_PRESETS["nitf"]
    )
    corpus = DocumentCorpus(documents)

    synopsis = DocumentSynopsis(mode="hashes", capacity=64, seed=42)
    for document in documents:
        synopsis.insert_document(document)
    estimator = SelectivityEstimator(synopsis)

    workload = WorkloadBuilder(dtd, corpus, seed=43).build(
        n_positive=N_INITIAL + EPOCHS * CHURN_PER_EPOCH, n_negative=0
    )
    patterns = workload.positive
    initial, reserve = patterns[:N_INITIAL], patterns[N_INITIAL:]

    # Synopsis joint estimates need not respect the min(P) bound the
    # selectivity-ratio prefilter relies on; keep the estimator's raw
    # clustering.
    policy = CommunityPolicy(THRESHOLD, ratio_prefilter=False)
    overlay = (
        OverlayBuilder()
        .topology("random_tree", N_BROKERS, seed=44)
        .subscriptions(initial)
        .provider(estimator)
        .advertisement(policy)
        .build_overlay()
    )
    stats = overlay.route_corpus(corpus)
    print(
        f"day 0: {len(overlay.subscriptions)} subscribers, "
        f"{stats.total_table_entries} table entries, "
        f"precision {stats.precision:.3f}, recall {stats.recall:.3f}"
    )

    rng = random.Random(45)
    arrivals = iter(reserve)
    for epoch in range(1, EPOCHS + 1):
        for victim in rng.sample(
            sorted(overlay.subscriptions), k=CHURN_PER_EPOCH
        ):
            overlay.unsubscribe(victim)
        for _ in range(CHURN_PER_EPOCH):
            overlay.subscribe(
                rng.randrange(N_BROKERS), next(arrivals)
            )
        stats = overlay.route_corpus(corpus)
        print(
            f"epoch {epoch}: churned {CHURN_PER_EPOCH}+{CHURN_PER_EPOCH}, "
            f"{stats.total_table_entries} table entries, "
            f"precision {stats.precision:.3f}, recall {stats.recall:.3f}, "
            f"{overlay.advertisement_messages} cumulative ad messages"
        )

    # The zero-decay property: rebuilding from the survivors changes nothing.
    rebuilt = BrokerOverlay.build("random_tree", N_BROKERS, seed=44)
    for home_id, pattern in overlay.subscriptions.values():
        rebuilt.attach(home_id, pattern)
    rebuilt.advertise(policy, provider=estimator)
    assert routing_state(overlay) == routing_state(rebuilt)
    print("zero decay: churned overlay matches a from-scratch rebuild")

    pairs = evaluated = pruned = 0
    for node in overlay.brokers.values():
        if node.index is None:
            continue
        population = len(node.index)
        pairs += population * (population - 1) // 2
        evaluated += node.index.stats.joint_evaluated
        pruned += node.index.stats.joint_pruned
    print(
        f"similarity engine: {evaluated} joint-selectivity probes served "
        f"every clustering across {EPOCHS * 2 * CHURN_PER_EPOCH} churn "
        f"events ({pairs} pairs still live, {pruned} pruned as tag-disjoint)"
    )


if __name__ == "__main__":
    main()
