"""Policy-driven overlay composition with the OverlayBuilder façade.

Everything the routing layer can vary is a first-class policy object
here, composed declaratively in one expression:

1. build an NITF corpus and subscriber population;
2. assemble topology, placement, advertisement policy, timing models and
   scheduling through :class:`~repro.routing.builder.OverlayBuilder`;
3. compare three advertisement policies on the same membership —
   per-subscription, community, and the hybrid that aggregates only the
   brokers holding enough subscriptions to be worth it;
4. replay a class-tagged publish stream under FIFO and priority
   scheduling and watch the per-class latency percentiles split: the
   high class buys its tail latency with the low class's queueing time;
5. absorb a subscription burst through the batch churn API — one
   re-aggregation, one advertisement diff.

Run:  PYTHONPATH=src python examples/policy_builder.py
"""

from __future__ import annotations

from repro import (
    CommunityPolicy,
    FifoScheduling,
    HybridPolicy,
    LinkModel,
    OverlayBuilder,
    PerSubscriptionPolicy,
    PriorityScheduling,
    ServiceModel,
)
from repro.dtd.builtin import nitf_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import generate_documents
from repro.generators.workload import WorkloadBuilder
from repro.xmltree.corpus import DocumentCorpus

N_DOCUMENTS = 200
N_SUBSCRIBERS = 36
N_BROKERS = 5
THRESHOLD = 0.5
RATE = 4.0
CLASSES = (0, 1, 2)


def main() -> None:
    dtd = nitf_dtd()
    print(f"generating {N_DOCUMENTS} NITF documents ...")
    documents = generate_documents(
        dtd, N_DOCUMENTS, seed=61, config=DOC_GENERATOR_PRESETS["nitf"]
    )
    corpus = DocumentCorpus(documents)
    workload = WorkloadBuilder(dtd, corpus, seed=62).build(
        n_positive=N_SUBSCRIBERS + 6, n_negative=0
    )
    patterns = workload.positive[:N_SUBSCRIBERS]
    burst = workload.positive[N_SUBSCRIBERS:]

    builder = (
        OverlayBuilder()
        .topology("random_tree", N_BROKERS, seed=63)
        .subscriptions(patterns)
        .provider(corpus)
        .service(ServiceModel(base=0.2, per_match=0.05))
        .links(LinkModel(default=1.0))
    )

    # --- one membership, three advertisement policies -------------------
    print("\nadvertisement policies on the same membership:")
    header = f"  {'policy':44s} {'tables':>6s} {'precision':>9s} {'recall':>7s}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for policy in (
        PerSubscriptionPolicy(),
        CommunityPolicy(THRESHOLD),
        HybridPolicy(THRESHOLD, aggregate_above=8),
    ):
        overlay = builder.advertisement(policy).build_overlay()
        stats = overlay.route_corpus(corpus)
        print(
            f"  {overlay.mode:44s} {stats.total_table_entries:6d} "
            f"{stats.precision:9.3f} {stats.recall:7.3f}"
        )

    # --- one overlay, two scheduling policies ---------------------------
    overlay = builder.advertisement(PerSubscriptionPolicy()).build_overlay()
    print(
        f"\nscheduling at rate {RATE:g}/t (classes cycle {CLASSES}, "
        "class 2 is the paying tier):"
    )
    for scheduling in (FifoScheduling(), PriorityScheduling()):
        engine = builder.scheduling(scheduling).build_engine(overlay)
        engine.publish_corpus(corpus, rate=RATE, classes=CLASSES)
        stats = engine.run()
        digest = ", ".join(
            f"class {cls}: p99={d.p99:6.2f}"
            for cls, d in sorted(stats.latency_by_class.items())
        )
        print(f"  {scheduling!r:28} {digest}")

    # --- batch churn ----------------------------------------------------
    overlay = (
        builder.advertisement(CommunityPolicy(THRESHOLD)).build_overlay()
    )
    before = overlay.advertisement_messages
    subscription_ids = overlay.subscribe_many(0, burst)
    print(
        f"\nbatch churn: {len(subscription_ids)} arrivals at broker 0 "
        f"absorbed in one re-aggregation "
        f"({overlay.advertisement_messages - before} ad messages)"
    )
    overlay.unsubscribe_many(subscription_ids)
    print(
        "burst retired again; total ad traffic "
        f"{overlay.advertisement_messages - before} messages for the "
        "round trip"
    )


if __name__ == "__main__":
    main()
