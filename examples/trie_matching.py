"""Merged-trie matching: one traversal answers a whole routing table.

A broker that evaluates every routing-table pattern independently pays
filtering cost linear in table size.  :class:`PatternTrie` merges all
patterns into one structure — shared spine prefixes, hash-consed branch
constraints, degree-sorted branch order — so one traversal returns every
matching destination, and the operation count tracks the table's
*distinct structure* rather than its pattern count.

This example:

1. matches a document through a small :class:`PatternTrie` directly and
   shows which subscriptions fire;
2. fills a :class:`RoutingTable` with generated NITF subscriptions and
   compares the filtering cost of its two modes — the default merged
   trie vs the per-pattern ``"linear"`` oracle — on the same documents.

Run:  PYTHONPATH=src python examples/trie_matching.py
"""

from __future__ import annotations

from repro import PatternTrie, parse_xml, parse_xpath
from repro.dtd.builtin import nitf_dtd
from repro.generators.docgen import DocumentGenerator
from repro.generators.querygen import PatternGenerator
from repro.routing.table import RoutingTable

DOCUMENT = parse_xml(
    """
    <media>
      <CD>
        <composer><last>Mozart</last></composer>
        <title>Requiem</title>
      </CD>
    </media>
    """
)

SUBSCRIPTIONS = {
    "alice": "/media/CD",
    "bob": "/media/CD[title]",
    "carol": "//composer/last",
    "dave": "/media/book",
    "erin": "//CD/Mozart",
}


def trie_tour() -> None:
    trie = PatternTrie()
    for subscriber, expression in SUBSCRIPTIONS.items():
        trie.add(parse_xpath(expression), subscriber)
    print(f"trie over {len(SUBSCRIPTIONS)} subscriptions: {trie}")
    result = trie.match(DOCUMENT)
    print(f"matched subscribers: {sorted(result.destinations)}")
    print(f"trie operations:     {result.operations}")
    print()


def table_modes() -> None:
    dtd = nitf_dtd()
    patterns = PatternGenerator(dtd, seed=7).generate_many(
        2_000, distinct=False
    )
    table = RoutingTable()
    for index, pattern in enumerate(patterns):
        table.add(pattern, index)
    docgen = DocumentGenerator(dtd, seed=21)
    documents = [docgen.generate() for _ in range(5)]
    print(f"routing table with {len(patterns)} NITF subscriptions")
    header = f"{'doc':>4s} {'trie ops':>9s} {'linear ops':>11s} {'matched':>8s}"
    print(header)
    print("-" * len(header))
    for number, document in enumerate(documents):
        via_trie, trie_ops = table.destinations_for(document)
        via_linear, linear_ops = table.destinations_for(
            document, matching="linear"
        )
        assert set(via_trie) == set(via_linear)
        print(
            f"{number:4d} {trie_ops:9d} {linear_ops:11d} {len(via_trie):8d}"
        )
    print()
    print(
        "Both modes deliver identical destinations; the trie pays for\n"
        "the table's shared structure once instead of once per pattern."
    )


def main() -> None:
    trie_tour()
    table_modes()


if __name__ == "__main__":
    main()
