"""Event-driven delivery walkthrough: latency under load.

The overlay benchmarks count match operations; a subscriber cares about
*when* documents arrive.  This example publishes the same NITF stream
through the discrete-event engine at a gentle and at a punishing rate,
under both advertisement regimes, and watches queueing turn routing-table
size into delay:

1. generate an NITF corpus and subscriber patterns, spread over a
   five-broker random tree;
2. advertise per-subscription (exact routing, big tables) and replay the
   stream through :class:`~repro.routing.engine.DeliveryEngine` — FIFO
   queues per broker, service time growing with match operations;
3. aggregate into semantic communities and replay the *identical*
   publish schedule;
4. compare latency percentiles, queueing delay and throughput — and
   verify both runs delivered exactly what the synchronous path routes.

Run:  PYTHONPATH=src python examples/async_delivery.py
"""

from __future__ import annotations

from repro import (
    BrokerOverlay,
    CommunityPolicy,
    LinkModel,
    OverlayBuilder,
    PerSubscriptionPolicy,
    ServiceModel,
)
from repro.dtd.builtin import nitf_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import generate_documents
from repro.generators.workload import WorkloadBuilder
from repro.xmltree.corpus import DocumentCorpus

N_DOCUMENTS = 200
N_SUBSCRIBERS = 40
N_BROKERS = 5
THRESHOLD = 0.5
RATES = (0.25, 4.0)


def replay(
    builder: OverlayBuilder,
    overlay: BrokerOverlay,
    corpus: DocumentCorpus,
    rate: float,
):
    """One engine run; returns (stats, delivered sets)."""
    engine = builder.build_engine(overlay)
    engine.publish_corpus(corpus, rate=rate)
    return engine.run(), engine.delivered_sets()


def describe(label: str, stats) -> None:
    print(
        f"  {label:20s} p50={stats.latency_p50:7.2f}  "
        f"p95={stats.latency_p95:7.2f}  p99={stats.latency_p99:7.2f}  "
        f"queue delay={stats.queue_delay_mean:6.2f}  "
        f"peak depth={stats.peak_queue_depth:3d}  "
        f"throughput={stats.throughput:5.2f}/t"
    )


def main() -> None:
    dtd = nitf_dtd()
    print(f"generating {N_DOCUMENTS} NITF documents ...")
    documents = generate_documents(
        dtd, N_DOCUMENTS, seed=41, config=DOC_GENERATOR_PRESETS["nitf"]
    )
    corpus = DocumentCorpus(documents)

    print(f"generating {N_SUBSCRIBERS} subscriber patterns ...")
    workload = WorkloadBuilder(dtd, corpus, seed=42).build(
        n_positive=N_SUBSCRIBERS, n_negative=0
    )

    builder = (
        OverlayBuilder()
        .topology("random_tree", N_BROKERS, seed=43)
        .subscriptions(workload.positive)
        .provider(corpus)
        .service(ServiceModel(base=0.2, per_match=0.05))
        .links(LinkModel(default=1.0))
    )
    print(f"overlay: {N_BROKERS} brokers in a random tree\n")

    policies = {
        "per_subscription": PerSubscriptionPolicy(),
        "community": CommunityPolicy(THRESHOLD),
    }
    outcomes: dict[str, dict[float, object]] = {}
    for regime, policy in policies.items():
        overlay = builder.advertisement(policy).build_overlay()
        table_entries = sum(
            len(node.table) for node in overlay.brokers.values()
        )
        print(f"{regime} advertisement ({table_entries} table entries):")
        synchronous = {
            index: frozenset(
                overlay.route(document, index % N_BROKERS)[0]
            )
            for index, document in enumerate(corpus.documents)
        }
        outcomes[regime] = {}
        for rate in RATES:
            stats, delivered = replay(builder, overlay, corpus, rate)
            outcomes[regime][rate] = stats
            # Whatever the load, the engine must agree with the
            # synchronous path on the full per-document delivery sets.
            assert delivered == synchronous, (regime, rate)
            describe(f"rate {rate:g}/t", stats)
        print()

    high = RATES[-1]
    baseline = outcomes["per_subscription"][high]
    aggregated = outcomes["community"][high]
    print(
        f"at rate {high:g}/t, community aggregation cuts mean queueing "
        f"delay from {baseline.queue_delay_mean:.2f} to "
        f"{aggregated.queue_delay_mean:.2f} time units and lifts "
        f"throughput from {baseline.throughput:.2f} to "
        f"{aggregated.throughput:.2f} documents/t —\n"
        "smaller routing tables mean shorter services, shorter queues, "
        "faster delivery."
    )


if __name__ == "__main__":
    main()
