"""Semantic communities for content-based routing (the paper's motivation).

Builds the full pub/sub scenario from Section 1:

1. generate an NITF news corpus and a population of subscriber patterns;
2. estimate pairwise subscription similarities *from the synopsis only*
   (a real broker never sees exact match sets in advance);
3. cluster subscribers into semantic communities at several similarity
   thresholds;
4. simulate routing and compare delivery precision/recall and filtering
   cost against per-subscription matching and flooding.

Run:  python examples/routing_communities.py
"""

from __future__ import annotations

from repro import DocumentSynopsis, SelectivityEstimator, SimilarityEstimator
from repro.dtd.builtin import nitf_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import generate_documents
from repro.generators.workload import WorkloadBuilder
from repro.routing.broker import RoutingSimulator
from repro.routing.community import leader_clustering
from repro.xmltree.corpus import DocumentCorpus

N_DOCUMENTS = 300
N_SUBSCRIBERS = 40


def main() -> None:
    dtd = nitf_dtd()
    print(f"generating {N_DOCUMENTS} NITF documents ...")
    documents = generate_documents(
        dtd, N_DOCUMENTS, seed=21, config=DOC_GENERATOR_PRESETS["nitf"]
    )
    corpus = DocumentCorpus(documents)

    print(f"generating {N_SUBSCRIBERS} subscriber patterns ...")
    workload = WorkloadBuilder(dtd, corpus, seed=22).build(
        n_positive=N_SUBSCRIBERS, n_negative=0
    )
    subscriptions = workload.positive

    # The broker's knowledge: a synopsis of the stream, nothing exact.
    synopsis = DocumentSynopsis(mode="hashes", capacity=64, seed=23)
    for document in documents:
        synopsis.insert_document(document)
    similarity_estimator = SimilarityEstimator(SelectivityEstimator(synopsis))

    def similarity(p, q):
        return similarity_estimator.similarity(p, q, metric="M3")

    simulator = RoutingSimulator(corpus, subscriptions)
    exact = simulator.per_subscription()
    flood = simulator.flooding()

    print()
    header = (
        f"{'strategy':28s} {'comm.':>5s} {'precision':>9s} "
        f"{'recall':>7s} {'matches/doc':>11s}"
    )
    print(header)
    print("-" * len(header))

    def show(stats, communities="-"):
        print(
            f"{stats.strategy:28s} {communities:>5} {stats.precision:9.3f} "
            f"{stats.recall:7.3f} {stats.matches_per_document:11.1f}"
        )

    show(exact)
    show(flood)
    for threshold in (0.9, 0.7, 0.5, 0.3):
        communities = leader_clustering(subscriptions, similarity, threshold)
        stats = simulator.community(communities)
        stats = type(stats)(
            strategy=f"community(threshold={threshold})",
            documents=stats.documents,
            subscribers=stats.subscribers,
            deliveries=stats.deliveries,
            true_deliveries=stats.true_deliveries,
            false_positives=stats.false_positives,
            false_negatives=stats.false_negatives,
            match_operations=stats.match_operations,
        )
        show(stats, str(len(communities)))

    print(
        "\nLower thresholds build fewer, larger communities: filtering cost\n"
        "(matches/doc) falls while precision/recall degrade gracefully —\n"
        "the trade-off the similarity metrics let a routing layer tune."
    )


if __name__ == "__main__":
    main()
