"""Multi-broker overlay routing walkthrough.

The full scalable-routing story of the paper, end to end:

1. generate an NITF news corpus and a population of subscriber patterns;
2. arrange five brokers in a random tree and spread the subscribers over
   them;
3. advertise under :class:`PerSubscriptionPolicy` first — exact routing,
   maximal state — and watch containment covering prune the
   advertisement flood;
4. then swap the advertisement policy: :class:`CommunityPolicy` clusters
   each broker's local subscribers into semantic communities over a live
   similarity index (fed by a *synopsis*, the only stream knowledge a
   real broker has) and advertises one pattern per community;
5. route the document stream end-to-end and compare filtering cost,
   routing state and delivery quality.

The overlay is assembled through the :class:`OverlayBuilder` façade and
the regimes are first-class policy objects — switching regime is
``overlay.advertise(policy, provider)``, not a different code path.

Run:  PYTHONPATH=src python examples/overlay_routing.py
"""

from __future__ import annotations

from repro import (
    CommunityPolicy,
    DocumentSynopsis,
    OverlayBuilder,
    PerSubscriptionPolicy,
    SelectivityEstimator,
)
from repro.dtd.builtin import nitf_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import generate_documents
from repro.generators.workload import WorkloadBuilder
from repro.xmltree.corpus import DocumentCorpus

N_DOCUMENTS = 300
N_SUBSCRIBERS = 40
N_BROKERS = 5


def main() -> None:
    dtd = nitf_dtd()
    print(f"generating {N_DOCUMENTS} NITF documents ...")
    documents = generate_documents(
        dtd, N_DOCUMENTS, seed=31, config=DOC_GENERATOR_PRESETS["nitf"]
    )
    corpus = DocumentCorpus(documents)

    print(f"generating {N_SUBSCRIBERS} subscriber patterns ...")
    workload = WorkloadBuilder(dtd, corpus, seed=32).build(
        n_positive=N_SUBSCRIBERS, n_negative=0
    )

    overlay = (
        OverlayBuilder()
        .topology("random_tree", N_BROKERS, seed=33)
        .subscriptions(workload.positive)
        .advertisement(PerSubscriptionPolicy())
        .build_overlay()
    )
    print(f"\noverlay: {N_BROKERS} brokers in a random tree")
    for node in overlay.brokers.values():
        print(
            f"  broker {node.broker_id}: neighbors={node.neighbors} "
            f"local subscribers={len(node.local_subscribers)}"
        )

    # The brokers' knowledge of the stream: a synopsis, nothing exact.
    synopsis = DocumentSynopsis(mode="hashes", capacity=64, seed=34)
    for document in documents:
        synopsis.insert_document(document)
    estimator = SelectivityEstimator(synopsis)

    per_subscription = overlay.route_corpus(corpus)

    header = (
        f"{'regime':24s} {'ops':>7s} {'tables':>6s} {'ads':>5s} "
        f"{'precision':>9s} {'recall':>7s}"
    )
    print()
    print(header)
    print("-" * len(header))

    def show(stats, label):
        print(
            f"{label:24s} {stats.match_operations:7d} "
            f"{stats.total_table_entries:6d} "
            f"{stats.advertisement_messages:5d} "
            f"{stats.precision:9.3f} {stats.recall:7.3f}"
        )

    show(per_subscription, "per_subscription")
    for threshold in (0.7, 0.5, 0.3):
        # Synopsis joint estimates need not respect the min(P) bound the
        # selectivity-ratio prefilter relies on; keep the estimator's raw
        # clustering.
        policy = CommunityPolicy(threshold, ratio_prefilter=False)
        overlay.advertise(policy, provider=estimator)
        show(overlay.route_corpus(corpus), f"community(th={threshold})")

    print(
        "\nAggregating subscriptions into communities cuts the network-wide\n"
        "filtering cost, increasingly so as the threshold drops (routing\n"
        "state follows at the more aggressive thresholds), while delivery\n"
        "quality degrades gracefully — the scalability trade-off the\n"
        "similarity metrics let an overlay tune."
    )


if __name__ == "__main__":
    main()
