"""Dynamic broker topology: join/leave with state split and merge.

A long-lived pub/sub deployment does not just churn subscribers — the
broker fleet itself grows, shrinks and reorganises.  This walkthrough
drives the topology lifecycle end to end:

1. build an NITF corpus and a 4-broker overlay with community-aggregated
   advertisement;
2. **grow** the fleet: graft a leaf broker under a loaded one (it is
   seeded with exactly the advertisement state its parent has forwarded
   — nothing re-floods elsewhere), then split a congested edge with a
   relay broker (pure re-keying, zero advertisement traffic for the
   rename);
3. migrate subscribers onto the newcomers with the ordinary
   subscription lifecycle;
4. **shrink** it again: retire brokers, letting ``remove_broker``
   withdraw their advertisements, re-home their subscribers and
   transplant their reversible-covering state onto a merge target;
5. verify the headline property after every operation: routing state is
   identical to a from-scratch rebuild of the surviving topology, yet
   the overlay never paid for a full re-flood;
6. replay a broker leave *mid-simulation* through the event engine —
   in-flight documents are re-routed to the merge target, and every
   delivery still happens.

Run:  PYTHONPATH=src python examples/topology_churn.py
"""

from __future__ import annotations

from repro import BrokerOverlay, CommunityPolicy, OverlayBuilder
from repro.dtd.builtin import nitf_dtd
from repro.experiments.config import DOC_GENERATOR_PRESETS
from repro.generators.docgen import generate_documents
from repro.generators.workload import WorkloadBuilder
from repro.routing.engine import LinkModel, ServiceModel
from repro.xmltree.corpus import DocumentCorpus

N_DOCUMENTS = 200
N_INITIAL = 20
N_BROKERS = 4
THRESHOLD = 0.5


def assert_rebuild_equal(overlay: BrokerOverlay) -> None:
    """The zero-decay check: churned state equals a fresh rebuild."""
    rebuilt = overlay.rebuilt()
    assert overlay.topology_signature() == rebuilt.topology_signature()


def main() -> None:
    dtd = nitf_dtd()
    print(f"generating {N_DOCUMENTS} NITF documents ...")
    documents = generate_documents(
        dtd, N_DOCUMENTS, seed=51, config=DOC_GENERATOR_PRESETS["nitf"]
    )
    corpus = DocumentCorpus(documents)
    workload = WorkloadBuilder(dtd, corpus, seed=52).build(
        n_positive=N_INITIAL + 6, n_negative=0
    )
    patterns = workload.positive
    initial, reserve = patterns[:N_INITIAL], patterns[N_INITIAL:]

    policy = CommunityPolicy(THRESHOLD)
    overlay = (
        OverlayBuilder()
        .topology("random_tree", N_BROKERS, seed=53)
        .subscriptions(initial)
        .provider(corpus)
        .advertisement(policy)
        .build_overlay()
    )
    settled = overlay.advertisement_messages
    print(
        f"day 0: {len(overlay.brokers)} brokers, "
        f"{len(overlay.subscriptions)} subscribers, "
        f"{settled} advertisement messages to settle"
    )

    # -- grow ----------------------------------------------------------
    busiest = max(
        overlay.brokers,
        key=lambda b: len(overlay.brokers[b].local_subscribers),
    )
    leaf = overlay.add_broker(busiest)
    grafted = overlay.advertisement_messages - settled
    print(
        f"grafted broker {int(leaf)} under {busiest}: seeded with "
        f"{grafted} messages over its one link, nothing re-flooded"
    )
    assert_rebuild_equal(overlay)

    edge_end = overlay.brokers[busiest].neighbors[0]
    before = overlay.advertisement_messages
    relay = overlay.add_broker(busiest, split=edge_end)
    print(
        f"split edge {busiest} — {edge_end} with relay {int(relay)}: "
        f"{overlay.advertisement_messages - before} messages "
        "(re-keying the link state is free; only the relay is seeded)"
    )
    assert_rebuild_equal(overlay)

    for position, pattern in enumerate(reserve):
        overlay.subscribe(leaf if position % 2 else relay, pattern)
    stats = overlay.route_corpus(corpus)
    print(
        f"after migration: {len(overlay.brokers)} brokers, "
        f"precision {stats.precision:.3f}, recall {stats.recall:.3f}"
    )

    # -- shrink --------------------------------------------------------
    before = overlay.advertisement_messages
    target = overlay.remove_broker(relay)
    print(
        f"retired relay {int(relay)} into {int(target)}: "
        f"{overlay.advertisement_messages - before} messages to withdraw, "
        "transplant and re-aggregate"
    )
    assert_rebuild_equal(overlay)

    before = overlay.advertisement_messages
    overlay.remove_broker(busiest)
    print(
        f"retired the (ex-)busiest broker {busiest}: "
        f"{overlay.advertisement_messages - before} messages; its "
        "subscribers now live on the merge target"
    )
    assert_rebuild_equal(overlay)
    stats = overlay.route_corpus(corpus)
    print(
        f"after shrinking: {len(overlay.brokers)} brokers, "
        f"precision {stats.precision:.3f}, recall {stats.recall:.3f} — "
        "tables still equal a from-scratch rebuild"
    )

    # -- a leave in the middle of a live simulation --------------------
    overlay, engine = (
        OverlayBuilder()
        .topology("chain", 4, seed=54)
        .subscriptions(initial)
        .provider(corpus)
        .advertisement(CommunityPolicy(THRESHOLD))
        .service(ServiceModel(base=0.3, per_match=0.02))
        .links(LinkModel(default=1.0))
        .allow_topology_churn()
        .build()
    )
    engine.publish_corpus(corpus, rate=4.0)
    retiring = 1
    engine.schedule_leave(5.0, retiring)
    timing = engine.run()
    when, event, merged = engine.topology_log[0]
    print(
        f"mid-simulation: broker {event.broker_id} left at t={when:g}, "
        f"merged into {merged}; {timing.deliveries} deliveries completed "
        f"(p95 latency {timing.latency_p95:.2f}), none lost to the churn"
    )


if __name__ == "__main__":
    main()
