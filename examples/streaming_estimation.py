"""Streaming estimation under distribution drift.

The synopsis is an *online* structure: it is maintained incrementally as
documents arrive, so estimates track the stream.  This example streams a
news corpus whose topic mix drifts half-way through (sports coverage gets
replaced by financial tables) and samples the estimated selectivity of two
subscriptions as the stream evolves — in all three representations.

Run:  python examples/streaming_estimation.py
"""

from __future__ import annotations

import random

from repro import DocumentSynopsis, SelectivityEstimator, parse_xml, parse_xpath

SPORTS = """
<nitf><body><body.content>
  <block><p><classifier>sports</classifier><person>{person}</person></p></block>
</body.content></body></nitf>
"""

FINANCE = """
<nitf><body><body.content>
  <block><table><tbody><tr><td><money>{amount}</money></td></tr></tbody></table></block>
</body.content></body></nitf>
"""

N_DOCUMENTS = 600
DRIFT_AT = 300
CHECKPOINTS = (100, 200, 300, 400, 500, 600)


def make_document(doc_id: int, rng: random.Random):
    """Sports-heavy before the drift point, finance-heavy after."""
    sports_share = 0.8 if doc_id < DRIFT_AT else 0.2
    if rng.random() < sports_share:
        return parse_xml(SPORTS.format(person=f"athlete-{rng.randrange(20)}"),
                         doc_id=doc_id)
    return parse_xml(FINANCE.format(amount=f"{rng.randrange(1000)}"),
                     doc_id=doc_id)


def main() -> None:
    subscriptions = {
        "sports  //classifier": parse_xpath("//classifier"),
        "finance //table//money": parse_xpath("//table//money"),
    }
    synopses = {
        mode: DocumentSynopsis(mode=mode, capacity=64, seed=41)
        for mode in ("counters", "sets", "hashes")
    }

    rng = random.Random(40)
    print(f"{'docs':>5s}", end="")
    for name in subscriptions:
        for mode in synopses:
            print(f"  {mode[:4]}:{name.split()[0]:7s}"[:16].rjust(16), end="")
    print()

    for doc_id in range(N_DOCUMENTS):
        document = make_document(doc_id, rng)
        for synopsis in synopses.values():
            synopsis.insert_document(document)
        if doc_id + 1 in CHECKPOINTS:
            print(f"{doc_id + 1:5d}", end="")
            for pattern in subscriptions.values():
                for synopsis in synopses.values():
                    estimator = SelectivityEstimator(synopsis)
                    print(f"{estimator.selectivity(pattern):16.3f}", end="")
            print()

    print(
        "\nEstimates track the drift at document 300: the sports pattern's\n"
        "selectivity decays toward the new mix while the finance pattern's\n"
        "rises, in every representation — the synopsis is a true streaming\n"
        "summary, not a one-shot index."
    )


if __name__ == "__main__":
    main()
