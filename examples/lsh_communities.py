"""LSH candidate generation: community formation past the all-pairs wall.

Exact community formation compares every incoming subscription against
every community leader — affordable at workshop scale, quadratic-ish at
the 10⁵-subscription deployments the paper targets.  This example runs
the same clustering twice over one NITF workload:

1. **exact** — the historical all-pairs path;
2. **LSH-gated** — a :class:`~repro.LSHCandidates` generator shingles
   each pattern by its synopsis matching-set sample, MinHash-signs it
   into banded buckets, and clustering only evaluates similarity against
   the leaders it collides with.

Both clusterings are compared community by community, then the same
generator is threaded through the deployment surface:
``OverlayBuilder.candidates(...)`` →
``advertise(CommunityPolicy(...))``, where every broker's live
similarity index consults the generator before paying for a selectivity
probe (``IndexStats.candidate_pruned`` counts the skips).

Run:  PYTHONPATH=src python examples/lsh_communities.py
"""

from __future__ import annotations

from repro import (
    CommunityPolicy,
    DocumentSynopsis,
    LSHCandidates,
    OverlayBuilder,
    SelectivityEstimator,
)
from repro.core.similarity import m3_joint_over_union
from repro.dtd.builtin import nitf_dtd
from repro.generators.docgen import DocumentGenerator
from repro.generators.querygen import PatternGenConfig, PatternGenerator
from repro.routing.community import leader_clustering

N_DOCUMENTS = 120
N_SUBSCRIBERS = 3_000
N_BROKERS = 5
THRESHOLD = 0.5


class CountingSimilarity:
    """M3 with a pair memo, counting evaluations actually dispatched."""

    def __init__(self, estimator: SelectivityEstimator):
        self.estimator = estimator
        self.memo: dict = {}
        self.calls = 0

    def __call__(self, p, q) -> float:
        self.calls += 1
        key = (p, q) if hash(p) <= hash(q) else (q, p)
        if key not in self.memo:
            self.memo[key] = m3_joint_over_union(self.estimator, p, q)
        return self.memo[key]


def main() -> None:
    dtd = nitf_dtd()
    print(f"building a {N_DOCUMENTS}-document NITF synopsis ...")
    synopsis = DocumentSynopsis(mode="sets", capacity=128, seed=21)
    docgen = DocumentGenerator(dtd, seed=21)
    for _ in range(N_DOCUMENTS):
        synopsis.insert_document(docgen.generate())
    estimator = SelectivityEstimator(synopsis)

    print(f"generating {N_SUBSCRIBERS} subscriber patterns ...")
    patterns = PatternGenerator(
        dtd, seed=7, config=PatternGenConfig(height=3, p_branch=0.05)
    ).generate_many(N_SUBSCRIBERS, distinct=False)

    # Shingle each pattern by the sample of documents it matches: MinHash
    # over matching sets estimates exactly the Jaccard overlap the M3
    # metric measures, so bucket collisions track the metric itself.
    token_cache: dict = {}

    def matching_sample_tokens(pattern):
        if pattern not in token_cache:
            token_cache[pattern] = [
                ("doc", i)
                for i in sorted(estimator.matching_view(pattern).ids)
            ]
        return token_cache[pattern]

    generator = LSHCandidates(tokens=matching_sample_tokens)

    exact_sim = CountingSimilarity(estimator)
    exact = leader_clustering(patterns, exact_sim, THRESHOLD)
    lsh_sim = CountingSimilarity(estimator)
    gated = leader_clustering(
        patterns, lsh_sim, THRESHOLD, candidates=generator
    )

    print(f"\nexact:     {len(exact):3d} communities, "
          f"{exact_sim.calls} similarity evaluations")
    print(f"lsh-gated: {len(gated):3d} communities, "
          f"{lsh_sim.calls} similarity evaluations "
          f"({generator.describe()})")
    exact_sizes = sorted((len(c) for c in exact), reverse=True)[:8]
    gated_sizes = sorted((len(c) for c in gated), reverse=True)[:8]
    print(f"largest exact communities: {exact_sizes}")
    print(f"largest lsh communities:   {gated_sizes}")

    print("\nthreading the generator through a broker overlay ...")
    overlay = (
        OverlayBuilder()
        .topology("random_tree", n_brokers=N_BROKERS, seed=11)
        .subscriptions(patterns)
        .provider(estimator)
        .advertisement(CommunityPolicy(threshold=THRESHOLD))
        .candidates(generator)
        .build_overlay()
    )
    print(f"overlay mode: {overlay.mode}")
    for broker_id, node in sorted(overlay.brokers.items()):
        stats = node.index.stats
        print(
            f"  broker {broker_id}: {len(node.local_subscribers):5d} "
            f"subscriptions -> {len(node.communities):3d} advertisements "
            f"(candidate-pruned pairs: {stats.candidate_pruned})"
        )

    print(
        "\nThe LSH gate makes placement cost per subscription independent\n"
        "of the community count: O(bands) bucket lookups plus the few\n"
        "colliding leaders, instead of a similarity probe against every\n"
        "leader — the step that takes community formation to 10⁵+\n"
        "subscriptions (see benchmarks/bench_lsh.py for the sweep)."
    )


if __name__ == "__main__":
    main()
