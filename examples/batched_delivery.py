"""Batched queue drains walkthrough: amortising the hot documents.

A saturated broker rarely sees one document at a time — its FIFO holds a
backlog, and real feeds repeat their hot documents.  This example pushes
a Zipf-skewed NITF stream through the discrete-event engine twice:

1. unbatched — the affine :class:`~repro.routing.engine.ServiceModel`,
   one document per service interval, every match paid cold;
2. batched — a :class:`~repro.routing.engine.BatchServiceModel`: each
   freed broker drains up to ``max_batch`` queued documents through one
   shared trie memo pool, so the service interval's cost grows with the
   batch's *distinct* structure (the measured op count), not its length;

then compares measured match operations, batch sizes, queueing delay and
latency — and verifies both runs delivered exactly the same per-document
sets, because batching is a scheduling decision, not a routing one.

Run:  PYTHONPATH=src python examples/batched_delivery.py
"""

from __future__ import annotations

import random

from repro import (
    BatchServiceModel,
    LinkModel,
    OverlayBuilder,
    PerSubscriptionPolicy,
    ServiceModel,
)
from repro.dtd.builtin import nitf_dtd
from repro.generators.docgen import DocumentGenerator
from repro.generators.querygen import PatternGenerator
from repro.generators.zipf import ZipfSampler
from repro.xmltree.corpus import DocumentCorpus
from repro.xmltree.tree import XMLTree

N_DOCUMENTS = 120
POOL_SIZE = 10
SKEW_THETA = 1.2
N_SUBSCRIBERS = 60
N_BROKERS = 4
RATE = 6.0
MAX_BATCH = 8


def skewed_corpus(dtd) -> DocumentCorpus:
    """A hot-document stream: Zipf-sampled repeats from a small pool."""
    pool_gen = DocumentGenerator(dtd, seed=33)
    pool = [pool_gen.generate() for _ in range(POOL_SIZE)]
    sampler = ZipfSampler(POOL_SIZE, theta=SKEW_THETA, rng=random.Random(5))
    documents = []
    for doc_id in range(N_DOCUMENTS):
        # Corpus ids must be unique, so each repeat is a fresh XMLTree
        # sharing the pooled document's structure arrays.
        hot = pool[sampler.sample()]
        documents.append(
            XMLTree(hot.labels, hot.parents, hot.children, doc_id=doc_id)
        )
    return DocumentCorpus(documents)


def replay(builder: OverlayBuilder, corpus: DocumentCorpus):
    """One engine run; returns (stats, delivered sets)."""
    overlay, engine = builder.build()
    engine.publish_corpus(corpus, rate=RATE)
    return engine.run(), engine.delivered_sets()


def main() -> None:
    dtd = nitf_dtd()
    print(
        f"generating a {N_DOCUMENTS}-document stream "
        f"({POOL_SIZE} distinct documents, Zipf θ={SKEW_THETA}) ..."
    )
    corpus = skewed_corpus(dtd)
    patterns = PatternGenerator(dtd, seed=7).generate_many(
        N_SUBSCRIBERS, distinct=False
    )

    builder = (
        OverlayBuilder()
        .topology("random_tree", N_BROKERS, seed=43)
        .subscriptions(patterns)
        .advertisement(PerSubscriptionPolicy())
        .links(LinkModel(default=0.5))
    )
    print(f"overlay: {N_BROKERS} brokers in a random tree\n")

    unbatched_stats, unbatched_sets = replay(
        builder.service(ServiceModel(base=0.3, per_match=0.01)), corpus
    )
    batched_stats, batched_sets = replay(
        builder.service(
            BatchServiceModel(
                base=0.3, per_match=0.01, per_doc=0.05, max_batch=MAX_BATCH
            )
        ),
        corpus,
    )

    # Batching changes scheduling, never routing.
    assert batched_sets == unbatched_sets

    for label, stats in (
        ("unbatched", unbatched_stats),
        (f"batched (≤{MAX_BATCH})", batched_stats),
    ):
        print(
            f"  {label:14s} services={stats.service_batches:4d}  "
            f"mean batch={stats.mean_batch_size:4.2f}  "
            f"match ops={stats.match_operations:6d}  "
            f"queue delay={stats.queue_delay_mean:6.2f}  "
            f"p95 latency={stats.latency_p95:7.2f}"
        )

    saved = unbatched_stats.match_operations - batched_stats.match_operations
    print(
        f"\nsame {len(unbatched_sets)} delivery sets in both runs; the "
        f"shared memo pool saved {saved} match operations "
        f"({saved / unbatched_stats.match_operations:.0%}) and the "
        f"per-drain base cost amortised over "
        f"{batched_stats.mean_batch_size:.2f} documents a service —\n"
        "the queue's repetition becomes the broker's discount."
    )


if __name__ == "__main__":
    main()
